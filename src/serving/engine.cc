#include "src/serving/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <utility>

#include "src/core/samoyeds_kernel.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/bf16.h"

namespace samoyeds {
namespace serving {

const char* RoutingAlgoName(RoutingAlgo r) {
  switch (r) {
    case RoutingAlgo::kTopK:
      return "top-k";
    case RoutingAlgo::kExpertChoice:
      return "expert-choice";
  }
  return "?";
}

const char* RequestStatusName(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kRunning:
      return "running";
    case RequestStatus::kFinished:
      return "finished";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "?";
}

ServingEngine::ServingEngine(std::vector<SamoyedsDecoderLayerWeights> layers,
                             const EngineConfig& config)
    : layers_(std::move(layers)),
      config_(config),
      hidden_(static_cast<int64_t>(layers_.empty() ? 0 : layers_.front().attn_norm_gamma.size())),
      scheduler_(config.scheduler),
      cache_(KvCacheConfig{config.scheduler.page_tokens, config.scheduler.max_pages},
             static_cast<int64_t>(layers_.size()), hidden_),
      pool_(config.threads, std::max(1, config.shards)) {
  assert(!layers_.empty());
  assert(hidden_ % config_.heads == 0);
  assert(config_.scheduler.page_tokens >= 1);
  assert(config_.shards >= 1);
  // Simulated serving cluster: one DefaultDevice per shard, with the CLI's
  // interconnect overrides applied uniformly.
  cluster_ = SimCluster::Homogeneous(DefaultDevice(), std::max(1, config_.shards));
  for (DeviceSpec& d : cluster_.devices) {
    if (config_.link_bandwidth_gbps > 0.0) {
      d.link_bandwidth_gbps = config_.link_bandwidth_gbps;
    }
    if (config_.link_latency_us >= 0.0) {
      d.link_latency_us = config_.link_latency_us;
    }
  }
  shard_plan_ = BuildShardPlan();
  assert(shard_plan_.IsValid());
}

ExpertShardPlan ServingEngine::BuildShardPlan() const {
  const int shards = std::max(1, config_.shards);
  const int experts = static_cast<int>(layers_.front().moe.experts.size());
  switch (config_.placement) {
    case ShardPlacement::kRoundRobin:
      break;
    case ShardPlacement::kCapacityBalanced: {
      // Bin-pack each expert index's total weight storage across the stack
      // (heterogeneous layers make expert indices differ in bytes).
      std::vector<int64_t> bytes(static_cast<size_t>(experts), 0);
      for (const SamoyedsDecoderLayerWeights& layer : layers_) {
        assert(static_cast<int>(layer.moe.experts.size()) == experts);
        for (int e = 0; e < experts; ++e) {
          const SamoyedsExpertWeights& w = layer.moe.experts[static_cast<size_t>(e)];
          bytes[static_cast<size_t>(e)] +=
              w.gate.StorageBytes() + w.up.StorageBytes() + w.down.StorageBytes();
        }
      }
      return ExpertShardPlan::CapacityBalanced(bytes, shards);
    }
    case ShardPlacement::kGateStats: {
      // Expected-load proxy: each expert index's router-gate row norm summed
      // across layers (larger rows win top-k more often).
      std::vector<double> loads(static_cast<size_t>(experts), 0.0);
      for (const SamoyedsDecoderLayerWeights& layer : layers_) {
        const std::vector<double> norms = GateRowNorms(layer.moe.router_gate);
        assert(static_cast<int>(norms.size()) == experts);
        for (int e = 0; e < experts; ++e) {
          loads[static_cast<size_t>(e)] += norms[static_cast<size_t>(e)];
        }
      }
      return ExpertShardPlan::FromLoads(loads, shards);
    }
  }
  return ExpertShardPlan::RoundRobin(experts, shards);
}

bool ServingEngine::Submit(Request request) {
  if (!known_ids_.insert(request.id).second) {
    return false;  // duplicate id: leave the original request's state alone
  }
  if (!request.ShapeValid(hidden_)) {
    RequestResult& result = results_[request.id];
    result.status = RequestStatus::kRejected;
    result.reason = "malformed request (bad prompt/decode/input shape)";
    metrics_.OnReject(request.id);
    return false;
  }
  queue_.Push(std::move(request));
  return true;
}

ResidentSnapshot ServingEngine::Resident(int64_t growth_pages) const {
  ResidentSnapshot snap;
  snap.sequences = static_cast<int64_t>(running_.size());
  snap.used_pages = cache_.allocator().used_pages() + growth_pages;
  for (int64_t id : running_) {
    const int64_t total = sequences_.at(id).request.total_tokens();
    snap.tokens += total;
    snap.reserved_pages += PagesForTokens(total, config_.scheduler.page_tokens);
  }
  return snap;
}

int64_t ServingEngine::DecodeGrowthPages() const {
  int64_t pages = 0;
  for (int64_t id : running_) {
    pages += cache_.allocator().PagesToExtend(id, 1);
  }
  return pages;
}

void ServingEngine::Preempt(int64_t id) {
  Sequence& seq = sequences_.at(id);
  cache_.Free(id);
  Request request = std::move(seq.request);
  sequences_.erase(id);
  running_.erase(std::find(running_.begin(), running_.end(), id));
  metrics_.OnPreempt(id, step_);
  // Partial outputs are discarded with the Sequence: readmission recomputes
  // the whole prefix, which reproduces the same rows (per-row compute is
  // independent of batch composition).
  scheduler_.Requeue(std::move(request));
}

MatrixF ServingEngine::ForwardBatch(const AssembledBatch& batch) {
  const int num_shards = cluster_.num_shards();
  step_shard_ms_.assign(static_cast<size_t>(num_shards), 0.0);
  step_shard_tokens_.assign(static_cast<size_t>(num_shards), 0);
  step_alltoall_ms_ = 0.0;
  step_account_ms_ = 0.0;
  step_traffic_ = TrafficReport{};

  MatrixF h = batch.rows;
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    const SamoyedsDecoderLayerWeights& w = layers_[layer];

    // Attention sub-block, per sequence: normed new rows extend the paged
    // cached prefix (gathered through the page table); causal attention over
    // the full prefix yields the new rows' outputs. Sequences are
    // independent — and own disjoint pages — so they fan out over the pool.
    // Each slice runs on the home shard of its batch rows — the same
    // contiguous data-parallel split the all-to-all model and the shared
    // experts use, so the simulation has one notion of where a token lives.
    MatrixF h1 = h;  // residual base
    for (size_t s = 0; s < batch.slices.size(); ++s) {
      const BatchSlice& slice = batch.slices[s];
      pool_.SubmitToShard(TokenHomeShard(slice.row_begin, h.rows(), num_shards),
                          [this, &h, &h1, &w, slice, layer] {
        MatrixF x_new(slice.row_count, hidden_);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            x_new(r, c) = h(slice.row_begin + r, c);
          }
        }
        const MatrixF normed_new = RmsNorm(x_new, w.attn_norm_gamma);

        const int64_t prefix = slice.position_begin;
        MatrixF full(prefix + slice.row_count, hidden_);
        cache_.GatherRows(slice.request_id, static_cast<int64_t>(layer), prefix, full.data());
        std::copy(normed_new.data(), normed_new.data() + normed_new.size(),
                  full.data() + prefix * hidden_);

        const MatrixF attn = AttentionForward(full, w.attention, config_.heads);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            h1(slice.row_begin + r, c) += attn(prefix + r, c);
          }
          std::copy(normed_new.row(r).begin(), normed_new.row(r).end(),
                    cache_.Row(slice.request_id, static_cast<int64_t>(layer), prefix + r));
        }
      });
    }
    pool_.WaitIdle();

    // MoE sub-block, whole batch: one routing plan covers every sequence's
    // tokens, so each expert runs once per iteration over its tile-split
    // SEL slices, on its placement shard's queue.
    MatrixF normed = RmsNorm(h1, w.moe_norm_gamma);
    RoundMatrixToBf16(normed);
    const RoutingPlan plan = config_.routing == RoutingAlgo::kExpertChoice
                                 ? RouteExpertChoice(normed, w.moe.router_gate, config_.top_k)
                                 : Route(normed, w.moe.router_gate, config_.top_k);
    metrics_.OnRoutingPlan(plan);
    SsmmConfig tile_cfg = SsmmConfig::Default();
    if (config_.autotune) {
      tile_cfg = ResolveTileConfig(w.moe, plan);
    }
    AccountMoeLayer(w.moe, plan, tile_cfg);
    ParallelMoeForwardSamoyeds(pool_, normed, w.moe, plan, config_.activation, shard_plan_,
                               moe_ws_, moe_out_);
    MatrixAxpy(1.0f, moe_out_, h1);
    h = std::move(h1);
  }
  return h;
}

void ServingEngine::AccountMoeLayer(const SamoyedsMoeLayerWeights& moe, const RoutingPlan& plan,
                                    const SsmmConfig& tile_cfg) {
  const auto account_t0 = std::chrono::steady_clock::now();
  const int num_shards = cluster_.num_shards();
  // Each routed expert's gate/up/down SSMM chain is charged to its shard;
  // the tuned tile configuration (autotuned serving) shapes every per-kernel
  // estimate. gate/up select this expert's tokens out of the whole batch
  // panel; down consumes the already-compressed intermediate.
  for (int e = 0; e < static_cast<int>(moe.experts.size()); ++e) {
    const int64_t count = plan.TokensForExpert(e);
    if (count == 0) {
      continue;
    }
    const int s = shard_plan_.shard_of(e);
    const DeviceSpec& device = cluster_.device(s);
    const TimingModel model(device);
    const SamoyedsExpertWeights& w = moe.experts[static_cast<size_t>(e)];
    for (const SamoyedsMatrix* proj : {&w.gate, &w.up}) {
      const GemmShape shape{proj->rows, proj->cols, plan.tokens};
      step_shard_ms_[static_cast<size_t>(s)] +=
          model.Estimate(SamoyedsKernel::Analyze(shape, count, proj->config, tile_cfg, device)
                             .traffic)
              .total_ms;
    }
    const GemmShape down{w.down.rows, w.down.cols, count};
    step_shard_ms_[static_cast<size_t>(s)] +=
        model.Estimate(
                 SamoyedsKernel::Analyze(down, count, w.down.config, tile_cfg, device).traffic)
            .total_ms;
  }
  // Shared experts are replicated: each shard runs them over its home token
  // slice (the data-parallel split the execution path uses too).
  for (const SamoyedsExpertWeights& w : moe.shared_experts) {
    for (int s = 0; s < num_shards; ++s) {
      const int64_t range = ShardHomeBegin(s + 1, plan.tokens, num_shards) -
                            ShardHomeBegin(s, plan.tokens, num_shards);
      if (range == 0) {
        continue;
      }
      const DeviceSpec& device = cluster_.device(s);
      const TimingModel model(device);
      for (const SamoyedsMatrix* proj : {&w.gate, &w.up}) {
        const GemmShape shape{proj->rows, proj->cols, plan.tokens};
        step_shard_ms_[static_cast<size_t>(s)] +=
            model.Estimate(SamoyedsKernel::Analyze(shape, range, proj->config, tile_cfg, device)
                               .traffic)
                .total_ms;
      }
      const GemmShape down{w.down.rows, w.down.cols, range};
      step_shard_ms_[static_cast<size_t>(s)] +=
          model.Estimate(
                   SamoyedsKernel::Analyze(down, range, w.down.config, tile_cfg, device).traffic)
              .total_ms;
    }
  }
  plan.AccumulateTokensPerBucket(shard_plan_.shard_of_expert(), step_shard_tokens_);
  // All-to-all: exact per-shard send/receive volumes feed the busiest-link
  // interconnect roofline (both phases pay link latency + serialization).
  const AllToAllTraffic traffic =
      ComputeAllToAllTraffic(plan, shard_plan_, hidden_, /*bytes_per_value=*/2, a2a_scratch_);
  const TimingModel model(cluster_.device(0));
  step_alltoall_ms_ += model.InterconnectPhaseMs(traffic.max_shard_dispatch_bytes) +
                       model.InterconnectPhaseMs(traffic.max_shard_combine_bytes);
  traffic.AddTo(step_traffic_);
  step_account_ms_ += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - account_t0)
                          .count();
}

SsmmConfig ServingEngine::ResolveTileConfig(const SamoyedsMoeLayerWeights& moe,
                                            const RoutingPlan& plan) {
  assert(!moe.experts.empty());
  // This layer's SSMM shape: every expert projection is (intermediate x
  // hidden) against this batch's token panel; the SEL length that drives
  // tile efficiency is the hottest expert's token count.
  const SamoyedsMatrix& gate = moe.experts.front().gate;
  const int64_t selected = std::max<int64_t>(1, plan.MaxTokensPerExpert());
  const std::array<int64_t, 4> key{gate.rows, gate.cols, plan.tokens, selected};
  auto it = autotune_cache_.find(key);
  const bool cache_hit = it != autotune_cache_.end();
  if (!cache_hit) {
    const GemmShape shape{gate.rows, gate.cols, plan.tokens};
    it = autotune_cache_
             .emplace(key, AutotuneSsmm(shape, selected, gate.config, DefaultDevice()))
             .first;
  }
  metrics_.OnAutotune(it->second.default_ms, it->second.simulated_ms, cache_hit);
  return it->second.config;
}

bool ServingEngine::Step() {
  const SchedulerConfig& sched_cfg = config_.scheduler;

  // 1. Ingress: requests whose arrival step has come due join the scheduler.
  for (Request& r : queue_.DrainArrived(step_)) {
    metrics_.OnArrival(r.id, step_, r.prompt_len, r.max_new_tokens);
    scheduler_.Enqueue(std::move(r));
  }

  // 2. Preemption: under a bounded page pool with eviction enabled, make sure
  // every resident can append this iteration's decode row. Victims are
  // lowest-priority, then youngest — and may be the grower itself, in which
  // case it simply sits out this batch from the queue head. A lone resident
  // always fits (admission rejects lifetimes beyond the pool), so this
  // terminates with at least one survivor.
  int64_t growth_pages = DecodeGrowthPages();
  if (sched_cfg.max_pages > 0 && sched_cfg.preempt) {
    while (!running_.empty() &&
           cache_.allocator().used_pages() + growth_pages > sched_cfg.max_pages) {
      std::vector<VictimCandidate> candidates;
      candidates.reserve(running_.size());
      for (int64_t id : running_) {
        const Sequence& seq = sequences_.at(id);
        candidates.push_back(VictimCandidate{id, seq.request.priority, seq.admit_seq});
      }
      Preempt(candidates[Scheduler::PickVictim(candidates)].id);
      growth_pages = DecodeGrowthPages();
    }
  }

  // 3. Admission under the iteration token budget and the resident-token or
  // page-accounting cap.
  const int64_t decode_rows = static_cast<int64_t>(running_.size());
  AdmissionDecision decision = scheduler_.Admit(decode_rows, Resident(growth_pages));
  for (Rejection& rejection : decision.rejected) {
    RequestResult& result = results_[rejection.request.id];
    result.status = RequestStatus::kRejected;
    result.reason = rejection.reason;
    metrics_.OnReject(rejection.request.id);
  }
  for (Request& r : decision.admitted) {
    const int64_t id = r.id;
    Sequence seq;
    seq.request = std::move(r);
    seq.admit_seq = admit_counter_++;
    sequences_.emplace(id, std::move(seq));
    running_.push_back(id);
    metrics_.OnAdmit(id, step_);
  }

  // 4. Assemble the iteration batch: decode rows first, then prefills; every
  // sequence's page table is extended to cover its new rows up front so the
  // forward's parallel tasks never mutate allocator state.
  std::vector<BatchAssembler::Contribution> parts;
  std::vector<Sequence*> seq_of_slice;
  for (int64_t id : running_) {
    Sequence& seq = sequences_.at(id);
    const bool is_prefill = seq.consumed == 0;
    BatchAssembler::Contribution p;
    p.request_id = id;
    p.source = &seq.request.inputs;
    p.row_begin = seq.consumed;
    p.row_count = is_prefill ? seq.request.prompt_len : 1;
    p.is_prefill = is_prefill;
    parts.push_back(p);
    seq_of_slice.push_back(&seq);
  }

  if (parts.empty()) {
    // Idle: fast-forward to the next trace arrival, or report drained.
    const int64_t next = queue_.NextArrivalStep();
    if (next < 0) {
      return false;
    }
    step_ = next;
    return true;
  }

  for (const BatchAssembler::Contribution& p : parts) {
    // Cannot fail: decode growth was reserved by the preemption pass and
    // admitted prompts were checked against the page budget.
    const bool ok = cache_.Extend(p.request_id, p.row_count);
    assert(ok);
    (void)ok;
  }

  const AssembledBatch batch = BatchAssembler::Assemble(parts, hidden_);

  // KV-page traffic this iteration: attention gathers every sequence's
  // cached prefix rows through its page table and appends the new normed
  // rows, once per layer (the ROADMAP's "charge cache gather/append traffic
  // in the analytic timing model").
  const double layer_count = static_cast<double>(layers_.size());
  double kv_read_bytes = 0.0;
  double kv_write_bytes = 0.0;
  for (const BatchSlice& slice : batch.slices) {
    kv_read_bytes += static_cast<double>(slice.position_begin * hidden_) * sizeof(float) *
                     layer_count;
    kv_write_bytes += static_cast<double>(slice.row_count * hidden_) * sizeof(float) *
                      layer_count;
  }

  // 5. One forward over the whole batch.
  const auto t0 = std::chrono::steady_clock::now();
  const MatrixF out = ForwardBatch(batch);
  const double forward_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  // 6. Scatter outputs back, advance sequences, retire finished ones.
  StepMetrics sm;
  sm.step = step_;
  sm.batch_rows = batch.total_rows();
  sm.running_sequences = static_cast<int64_t>(running_.size());
  sm.kv_used_pages = cache_.allocator().used_pages();
  sm.kv_frag_tokens = cache_.allocator().FragmentationWaste();
  // Measured forward time, minus the host time the analytic accounting
  // itself spent inside ForwardBatch — simulation bookkeeping must not
  // contaminate the throughput metrics.
  sm.wall_ms = std::max(0.0, forward_ms - step_account_ms_);

  // Analytic step estimate: the per-shard MoE device times accumulated by
  // ForwardBatch, plus the step's KV-page traffic as a bandwidth-roofline
  // stream split data-parallel across shards, plus the interconnect
  // all-to-all. The slowest shard gates the iteration.
  sm.kv_read_bytes = kv_read_bytes;
  sm.kv_write_bytes = kv_write_bytes;
  sm.alltoall_dispatch_bytes = step_traffic_.alltoall_dispatch_bytes;
  sm.alltoall_combine_bytes = step_traffic_.alltoall_combine_bytes;
  sm.est_alltoall_ms = step_alltoall_ms_;
  double max_shard_ms = 0.0;
  for (double ms : step_shard_ms_) {
    max_shard_ms = std::max(max_shard_ms, ms);
  }
  const double shard_count = static_cast<double>(cluster_.num_shards());
  TrafficReport kv;
  kv.gmem_read_bytes = kv_read_bytes / shard_count;
  kv.gmem_write_bytes = kv_write_bytes / shard_count;
  kv.gmem_unique_bytes = (kv_read_bytes + kv_write_bytes) / shard_count;
  // Page-granular gathers stream whole pages — coalesced, bandwidth-bound;
  // give the stand-in kernel a launch shape wide enough to saturate.
  kv.thread_blocks = 1 + static_cast<int64_t>(kv.gmem_unique_bytes) / (128 << 10);
  kv.warps_per_block = 8;
  kv.efficiency = 0.8;
  sm.est_compute_ms =
      max_shard_ms + TimingModel(cluster_.device(0)).Estimate(kv).total_ms;
  metrics_.OnShardTokens(step_shard_tokens_);

  std::vector<int64_t> still_running;
  for (size_t s = 0; s < batch.slices.size(); ++s) {
    const BatchSlice& slice = batch.slices[s];
    Sequence& seq = *seq_of_slice[s];
    (slice.is_prefill ? sm.prefill_rows : sm.decode_rows) += slice.row_count;
    for (int64_t r = 0; r < slice.row_count; ++r) {
      const auto row = out.row(slice.row_begin + r);
      seq.out_rows.insert(seq.out_rows.end(), row.begin(), row.end());
    }
    seq.consumed += slice.row_count;
    if (slice.is_prefill) {
      metrics_.OnFirstOutput(slice.request_id, step_);
    }
    if (seq.consumed == seq.request.total_tokens()) {
      RequestResult& result = results_[slice.request_id];
      result.status = RequestStatus::kFinished;
      result.outputs =
          MatrixF::FromRowMajor(seq.consumed, hidden_, std::move(seq.out_rows));
      metrics_.OnFinish(slice.request_id, step_);
      cache_.Free(slice.request_id);
      sequences_.erase(slice.request_id);
    } else {
      still_running.push_back(slice.request_id);
    }
  }
  running_ = std::move(still_running);

  metrics_.OnStep(sm);
  ++step_;
  return true;
}

int64_t ServingEngine::RunUntilDrained(int64_t max_steps) {
  int64_t iterations = 0;
  while (Step()) {
    ++iterations;
    if (max_steps > 0 && iterations >= max_steps) {
      break;
    }
  }
  return iterations;
}

RequestStatus ServingEngine::Status(int64_t id) const {
  if (auto it = results_.find(id); it != results_.end()) {
    return it->second.status;
  }
  if (sequences_.count(id) != 0) {
    return RequestStatus::kRunning;
  }
  return RequestStatus::kQueued;
}

const RequestResult* ServingEngine::Result(int64_t id) const {
  const auto it = results_.find(id);
  return it == results_.end() ? nullptr : &it->second;
}

}  // namespace serving
}  // namespace samoyeds
