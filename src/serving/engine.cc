#include "src/serving/engine.h"

#include <cassert>
#include <chrono>
#include <utility>

#include "src/tensor/bf16.h"

namespace samoyeds {
namespace serving {

const char* RequestStatusName(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kRunning:
      return "running";
    case RequestStatus::kFinished:
      return "finished";
    case RequestStatus::kRejected:
      return "rejected";
  }
  return "?";
}

ServingEngine::ServingEngine(std::vector<SamoyedsDecoderLayerWeights> layers,
                             const EngineConfig& config)
    : layers_(std::move(layers)),
      config_(config),
      hidden_(static_cast<int64_t>(layers_.empty() ? 0 : layers_.front().attn_norm_gamma.size())),
      scheduler_(config.scheduler),
      pool_(config.threads) {
  assert(!layers_.empty());
  assert(hidden_ % config_.heads == 0);
}

bool ServingEngine::Submit(Request request) {
  if (!known_ids_.insert(request.id).second) {
    return false;  // duplicate id: leave the original request's state alone
  }
  if (!request.ShapeValid(hidden_)) {
    results_[request.id].status = RequestStatus::kRejected;
    metrics_.OnReject(request.id);
    return false;
  }
  queue_.Push(std::move(request));
  return true;
}

ResidentSnapshot ServingEngine::Resident() const {
  ResidentSnapshot snap;
  snap.sequences = static_cast<int64_t>(running_.size());
  for (int64_t id : running_) {
    snap.tokens += sequences_.at(id).request.total_tokens();
  }
  return snap;
}

MatrixF ServingEngine::ForwardBatch(const AssembledBatch& batch,
                                    std::vector<Sequence*>& seq_of_slice) {
  MatrixF h = batch.rows;
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    const SamoyedsDecoderLayerWeights& w = layers_[layer];

    // Attention sub-block, per sequence: normed new rows extend the cached
    // prefix; causal attention over the full prefix yields the new rows'
    // outputs. Sequences are independent, so they fan out over the pool.
    MatrixF h1 = h;  // residual base
    for (size_t s = 0; s < batch.slices.size(); ++s) {
      const BatchSlice& slice = batch.slices[s];
      Sequence* seq = seq_of_slice[s];
      pool_.Submit([this, &h, &h1, &w, slice, seq, layer] {
        MatrixF x_new(slice.row_count, hidden_);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            x_new(r, c) = h(slice.row_begin + r, c);
          }
        }
        const MatrixF normed_new = RmsNorm(x_new, w.attn_norm_gamma);

        std::vector<float>& cache = seq->attn_normed[layer];
        const int64_t prefix = static_cast<int64_t>(cache.size()) / hidden_;
        MatrixF full(prefix + slice.row_count, hidden_);
        std::copy(cache.begin(), cache.end(), full.data());
        std::copy(normed_new.data(), normed_new.data() + normed_new.size(),
                  full.data() + prefix * hidden_);

        const MatrixF attn = AttentionForward(full, w.attention, config_.heads);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            h1(slice.row_begin + r, c) += attn(prefix + r, c);
          }
        }
        cache.insert(cache.end(), normed_new.data(), normed_new.data() + normed_new.size());
      });
    }
    pool_.WaitIdle();

    // MoE sub-block, whole batch: one routing plan covers every sequence's
    // tokens, so each expert runs once per iteration over its SEL slice.
    MatrixF normed = RmsNorm(h1, w.moe_norm_gamma);
    RoundMatrixToBf16(normed);
    const RoutingPlan plan = Route(normed, w.moe.router_gate, config_.top_k);
    metrics_.OnRoutingPlan(plan);
    const MatrixF moe_out = ParallelMoeForwardSamoyeds(pool_, normed, w.moe, plan,
                                                       config_.activation);
    for (int64_t i = 0; i < h1.size(); ++i) {
      h1.flat()[static_cast<size_t>(i)] += moe_out.flat()[static_cast<size_t>(i)];
    }
    h = std::move(h1);
  }
  return h;
}

bool ServingEngine::Step() {
  // 1. Ingress: requests whose arrival step has come due join the scheduler.
  for (Request& r : queue_.DrainArrived(step_)) {
    metrics_.OnArrival(r.id, step_, r.prompt_len, r.max_new_tokens);
    scheduler_.Enqueue(std::move(r));
  }

  // 2. Admission under the iteration token budget and resident-token cap.
  const int64_t decode_rows = static_cast<int64_t>(running_.size());
  AdmissionDecision decision = scheduler_.Admit(decode_rows, Resident());
  for (Request& r : decision.rejected) {
    results_[r.id].status = RequestStatus::kRejected;
    metrics_.OnReject(r.id);
  }
  for (Request& r : decision.admitted) {
    const int64_t id = r.id;
    Sequence seq;
    seq.request = std::move(r);
    seq.attn_normed.resize(layers_.size());
    sequences_.emplace(id, std::move(seq));
    running_.push_back(id);
    metrics_.OnAdmit(id, step_);
  }

  // 3. Assemble the iteration batch: decode rows first, then prefills.
  std::vector<BatchAssembler::Contribution> parts;
  std::vector<Sequence*> seq_of_slice;
  for (int64_t id : running_) {
    Sequence& seq = sequences_.at(id);
    const bool is_prefill = seq.consumed == 0;
    BatchAssembler::Contribution p;
    p.request_id = id;
    p.source = &seq.request.inputs;
    p.row_begin = seq.consumed;
    p.row_count = is_prefill ? seq.request.prompt_len : 1;
    p.is_prefill = is_prefill;
    parts.push_back(p);
    seq_of_slice.push_back(&seq);
  }

  if (parts.empty()) {
    // Idle: fast-forward to the next trace arrival, or report drained.
    const int64_t next = queue_.NextArrivalStep();
    if (next < 0) {
      return false;
    }
    step_ = next;
    return true;
  }

  const AssembledBatch batch = BatchAssembler::Assemble(parts, hidden_);

  // 4. One forward over the whole batch.
  const auto t0 = std::chrono::steady_clock::now();
  const MatrixF out = ForwardBatch(batch, seq_of_slice);
  const double forward_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  // 5. Scatter outputs back, advance sequences, retire finished ones.
  StepMetrics sm;
  sm.step = step_;
  sm.batch_rows = batch.total_rows();
  sm.running_sequences = static_cast<int64_t>(running_.size());
  sm.wall_ms = forward_ms;

  std::vector<int64_t> still_running;
  for (size_t s = 0; s < batch.slices.size(); ++s) {
    const BatchSlice& slice = batch.slices[s];
    Sequence& seq = *seq_of_slice[s];
    (slice.is_prefill ? sm.prefill_rows : sm.decode_rows) += slice.row_count;
    for (int64_t r = 0; r < slice.row_count; ++r) {
      const auto row = out.row(slice.row_begin + r);
      seq.out_rows.insert(seq.out_rows.end(), row.begin(), row.end());
    }
    seq.consumed += slice.row_count;
    if (slice.is_prefill) {
      metrics_.OnFirstOutput(slice.request_id, step_);
    }
    if (seq.consumed == seq.request.total_tokens()) {
      RequestResult& result = results_[slice.request_id];
      result.status = RequestStatus::kFinished;
      result.outputs =
          MatrixF::FromRowMajor(seq.consumed, hidden_, std::move(seq.out_rows));
      metrics_.OnFinish(slice.request_id, step_);
      sequences_.erase(slice.request_id);
    } else {
      still_running.push_back(slice.request_id);
    }
  }
  running_ = std::move(still_running);

  metrics_.OnStep(sm);
  ++step_;
  return true;
}

int64_t ServingEngine::RunUntilDrained(int64_t max_steps) {
  int64_t iterations = 0;
  while (Step()) {
    ++iterations;
    if (max_steps > 0 && iterations >= max_steps) {
      break;
    }
  }
  return iterations;
}

RequestStatus ServingEngine::Status(int64_t id) const {
  if (auto it = results_.find(id); it != results_.end()) {
    return it->second.status;
  }
  if (sequences_.count(id) != 0) {
    return RequestStatus::kRunning;
  }
  return RequestStatus::kQueued;
}

const RequestResult* ServingEngine::Result(int64_t id) const {
  const auto it = results_.find(id);
  return it == results_.end() ? nullptr : &it->second;
}

}  // namespace serving
}  // namespace samoyeds
