#include "src/serving/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "src/core/samoyeds_kernel.h"
#include "src/obs/tracer.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/bf16.h"

namespace samoyeds {
namespace serving {

const char* RoutingAlgoName(RoutingAlgo r) {
  switch (r) {
    case RoutingAlgo::kTopK:
      return "top-k";
    case RoutingAlgo::kExpertChoice:
      return "expert-choice";
  }
  return "?";
}

const char* RequestStatusName(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kRunning:
      return "running";
    case RequestStatus::kFinished:
      return "finished";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kTimedOut:
      return "timed-out";
    case RequestStatus::kShedded:
      return "shedded";
  }
  return "?";
}

bool IsTerminal(RequestStatus s) {
  return s == RequestStatus::kFinished || s == RequestStatus::kRejected ||
         s == RequestStatus::kCancelled || s == RequestStatus::kTimedOut ||
         s == RequestStatus::kShedded;
}

const char* CancelOutcomeName(CancelOutcome o) {
  switch (o) {
    case CancelOutcome::kCancelled:
      return "cancelled";
    case CancelOutcome::kUnknownId:
      return "unknown-id";
    case CancelOutcome::kAlreadyTerminal:
      return "already-terminal";
  }
  return "?";
}

RequestStatus SessionHandle::status() const {
  return engine_ == nullptr ? RequestStatus::kRejected : engine_->Status(id_);
}

MatrixF SessionHandle::NewRows() {
  return engine_ == nullptr ? MatrixF(0, 0) : engine_->NewRows(id_);
}

int64_t SessionHandle::available_rows() const {
  return engine_ == nullptr ? 0 : engine_->AvailableRows(id_);
}

int64_t SessionHandle::delivered_rows() const {
  return engine_ == nullptr ? 0 : engine_->DeliveredRows(id_);
}

bool SessionHandle::Cancel() { return engine_ != nullptr && engine_->Cancel(id_); }

ServingEngine::ServingEngine(std::vector<SamoyedsDecoderLayerWeights> layers,
                             const EngineConfig& config)
    : layers_(std::move(layers)),
      config_(config),
      hidden_(static_cast<int64_t>(layers_.empty() ? 0 : layers_.front().attn_norm_gamma.size())),
      scheduler_(config.scheduler),
      cache_(KvCacheConfig{config.scheduler.page_tokens, config.scheduler.max_pages},
             static_cast<int64_t>(layers_.size()), hidden_),
      swap_tier_(static_cast<int64_t>(layers_.size()), hidden_,
                 config.scheduler.page_tokens, config.host_pages),
      pool_(config.threads, std::max(1, config.shards)) {
  assert(!layers_.empty());
  assert(hidden_ % config_.heads == 0);
  assert(config_.scheduler.page_tokens >= 1);
  assert(config_.shards >= 1);
  // Simulated serving cluster: one DefaultDevice per shard, with the CLI's
  // interconnect overrides applied uniformly.
  cluster_ = SimCluster::Homogeneous(DefaultDevice(), std::max(1, config_.shards));
  for (DeviceSpec& d : cluster_.devices) {
    if (config_.link_bandwidth_gbps > 0.0) {
      d.link_bandwidth_gbps = config_.link_bandwidth_gbps;
    }
    if (config_.link_latency_us >= 0.0) {
      d.link_latency_us = config_.link_latency_us;
    }
  }
  shard_plan_ = BuildShardPlan();
  assert(shard_plan_.IsValid());
  live_shards_.resize(static_cast<size_t>(cluster_.num_shards()));
  for (size_t s = 0; s < live_shards_.size(); ++s) {
    live_shards_[s] = static_cast<int>(s);
  }
  // Install the SSMM inner-loop backend process-wide: the expert forward
  // chain picks it up through RunPanel's default backend argument.
  // SetKernelBackend resolves kAuto and applies SAMOYEDS_FORCE_BACKEND.
  effective_backend_ = SetKernelBackend(config_.kernel_backend);
  injector_.Configure(config_.faults, config_.fault_seed);
  // Prefix sharing relies on per-row outputs being independent of batch
  // composition; expert-choice routing breaks that, so the cache is silently
  // suppressed there (replaying another batch's rows would not be
  // bit-lossless). Swap preemption needs an eviction path (preempt + bounded
  // pool) and a modeled host link to charge transfers against.
  if (config_.prefix_cache && config_.routing != RoutingAlgo::kExpertChoice) {
    prefix_cache_ = std::make_unique<PrefixCache>(config_.scheduler.page_tokens, hidden_);
  }
  swap_enabled_ = config_.swap && config_.scheduler.preempt &&
                  config_.scheduler.max_pages > 0 && cluster_.device(0).has_host_link();
}

ExpertShardPlan ServingEngine::BuildShardPlan() const {
  const int shards = std::max(1, config_.shards);
  const int experts = static_cast<int>(layers_.front().moe.experts.size());
  switch (config_.placement) {
    case ShardPlacement::kRoundRobin:
      break;
    case ShardPlacement::kCapacityBalanced: {
      // Bin-pack each expert index's total weight storage across the stack
      // (heterogeneous layers make expert indices differ in bytes).
      std::vector<int64_t> bytes(static_cast<size_t>(experts), 0);
      for (const SamoyedsDecoderLayerWeights& layer : layers_) {
        assert(static_cast<int>(layer.moe.experts.size()) == experts);
        for (int e = 0; e < experts; ++e) {
          const SamoyedsExpertWeights& w = layer.moe.experts[static_cast<size_t>(e)];
          bytes[static_cast<size_t>(e)] +=
              w.gate.StorageBytes() + w.up.StorageBytes() + w.down.StorageBytes();
        }
      }
      return ExpertShardPlan::CapacityBalanced(bytes, shards);
    }
    case ShardPlacement::kGateStats: {
      // Expected-load proxy: each expert index's router-gate row norm summed
      // across layers (larger rows win top-k more often).
      std::vector<double> loads(static_cast<size_t>(experts), 0.0);
      for (const SamoyedsDecoderLayerWeights& layer : layers_) {
        const std::vector<double> norms = GateRowNorms(layer.moe.router_gate);
        assert(static_cast<int>(norms.size()) == experts);
        for (int e = 0; e < experts; ++e) {
          loads[static_cast<size_t>(e)] += norms[static_cast<size_t>(e)];
        }
      }
      return ExpertShardPlan::FromLoads(loads, shards);
    }
  }
  return ExpertShardPlan::RoundRobin(experts, shards);
}

SessionHandle ServingEngine::Submit(Request request, OnRowsCallback on_rows) {
  if (!known_ids_.insert(request.id).second) {
    return SessionHandle();  // duplicate id: leave the original session alone
  }
  const int64_t id = request.id;
  if (!request.ShapeValid(hidden_)) {
    Finalize(id, RequestStatus::kRejected, "malformed request (bad prompt/decode/input shape)");
    return SessionHandle(this, id, /*accepted=*/false);
  }
  // Overload control: a bounded ingress queue sheds the lowest-priority
  // entry strictly below the arrival's class to make room — or, when the
  // arrival itself is the lowest class offered, the arrival.
  if (config_.ingress_capacity > 0 && queue_.size() >= config_.ingress_capacity) {
    const int64_t victim = queue_.ShedVictim(request.priority);
    if (victim < 0) {
      Finalize(id, RequestStatus::kShedded, "shed: ingress queue full (overload)");
      return SessionHandle(this, id, /*accepted=*/false);
    }
    const bool shed = Terminate(victim, RequestStatus::kShedded,
                                "shed: displaced by a higher-priority arrival "
                                "(ingress queue full)");
    assert(shed);
    (void)shed;
  }
  SessionState session;
  session.on_rows = std::move(on_rows);
  session.last_progress_step = step_;
  sessions_.emplace(id, std::move(session));
  queue_.Push(std::move(request));
  return SessionHandle(this, id, /*accepted=*/true);
}

RequestResult& ServingEngine::Finalize(int64_t id, RequestStatus status, std::string reason) {
  RequestResult& result = results_[id];
  // Exactly one terminal transition per session, and exactly one reason:
  // non-empty for every terminal status except kFinished (whose "reason" is
  // the full output matrix), empty for kFinished.
  assert(!IsTerminal(result.status));
  assert(IsTerminal(status));
  assert((status == RequestStatus::kFinished) == reason.empty());
  result.status = status;
  result.reason = std::move(reason);
  switch (status) {
    case RequestStatus::kFinished:
      metrics_.OnFinish(id, step_);
      break;
    case RequestStatus::kRejected:
      metrics_.OnReject(id);
      break;
    case RequestStatus::kCancelled:
      metrics_.OnCancel(id, step_);
      break;
    case RequestStatus::kTimedOut:
      metrics_.OnTimeout(id, step_);
      break;
    case RequestStatus::kShedded:
      metrics_.OnShed(id, step_);
      break;
    default:
      break;
  }
  return result;
}

int64_t ServingEngine::ProducedRows(int64_t id) const {
  if (const auto it = sequences_.find(id); it != sequences_.end()) {
    return static_cast<int64_t>(it->second.out_rows.size()) / hidden_;
  }
  if (const auto it = results_.find(id); it != results_.end()) {
    return it->second.outputs.rows();
  }
  return 0;
}

int64_t ServingEngine::AvailableRows(int64_t id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return 0;
  }
  // A preempted sequence's recompute can briefly trail the delivery cursor;
  // those rows were already streamed and are never re-delivered.
  return std::max<int64_t>(0, ProducedRows(id) - it->second.delivered);
}

int64_t ServingEngine::DeliveredRows(int64_t id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second.delivered;
}

MatrixF ServingEngine::DrainRows(int64_t id, SessionState& session) {
  const int64_t begin = session.delivered;
  const int64_t produced = ProducedRows(id);
  if (produced <= begin) {
    // A preempted sequence's recompute can briefly trail the cursor; those
    // rows were already streamed and are never re-delivered.
    return MatrixF(0, 0);
  }
  MatrixF rows(produced - begin, hidden_);
  const float* src = nullptr;
  if (const auto seq = sequences_.find(id); seq != sequences_.end()) {
    src = seq->second.out_rows.data() + begin * hidden_;
  } else {
    src = results_.at(id).outputs.data() + begin * hidden_;
  }
  std::copy(src, src + rows.size(), rows.data());
  session.delivered = produced;
  metrics_.OnRowsDelivered(id, rows.rows());
  return rows;
}

MatrixF ServingEngine::NewRows(int64_t id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? MatrixF(0, 0) : DrainRows(id, it->second);
}

void ServingEngine::StreamToCallback(int64_t id, bool finished) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second.on_rows) {
    return;
  }
  SessionState& session = it->second;
  const int64_t begin = session.delivered;
  const MatrixF rows = DrainRows(id, session);
  if (rows.rows() == 0 && !finished) {
    return;  // nothing new; the terminal delta always fires, even if empty
  }
  const StreamDelta delta{id, begin, rows, finished};
  session.on_rows(delta);
}

bool ServingEngine::Cancel(int64_t id) {
  return TryCancel(id) == CancelOutcome::kCancelled;
}

CancelOutcome ServingEngine::TryCancel(int64_t id) {
  if (known_ids_.count(id) == 0) {
    return CancelOutcome::kUnknownId;  // never submitted: not a session at all
  }
  return Terminate(id, RequestStatus::kCancelled, "cancelled by client")
             ? CancelOutcome::kCancelled
             : CancelOutcome::kAlreadyTerminal;
}

bool ServingEngine::Terminate(int64_t id, RequestStatus status, std::string reason) {
  if (sessions_.count(id) == 0 || IsTerminal(Status(id))) {
    return false;  // unknown, rejected/shed at submit, or already terminal
  }
  SessionState& session = sessions_.at(id);
  if (const auto it = sequences_.find(id); it != sequences_.end()) {
    // Resident (possibly mid-prefill): retire with the rows produced so far
    // and return every page to the allocator's free list. After a
    // preemption the recompute may not have caught back up to the rows
    // already streamed — the stashed prefix is the longer record then.
    Sequence& seq = it->second;
    if (prefix_cache_ != nullptr) {
      // The rows computed so far are still bit-exact prefix state — donate
      // them before the page table goes away.
      prefix_cache_->Donate(id, seq.request.inputs, seq.consumed, seq.out_rows,
                            cache_.mutable_allocator());
    }
    std::vector<float> rows = session.retained.size() > seq.out_rows.size()
                                  ? std::move(session.retained)
                                  : std::move(seq.out_rows);
    const int64_t produced = static_cast<int64_t>(rows.size()) / hidden_;
    RequestResult& result = Finalize(id, status, std::move(reason));
    result.outputs = MatrixF::FromRowMajor(produced, hidden_, std::move(rows));
    cache_.Free(id);
    running_.erase(std::find(running_.begin(), running_.end(), id));
    sequences_.erase(it);
    StreamToCallback(id, /*finished=*/true);  // unblock push-mode consumers
    return true;
  }
  // Still queued: in the ingress queue (not yet arrived) or awaiting
  // admission in the scheduler backlog — which includes sessions requeued
  // by preemption, whose already-streamed rows live in the stash.
  const bool removed = queue_.Remove(id) || scheduler_.Cancel(id);
  assert(removed);
  (void)removed;
  // A victim terminated at the evicted-but-requeued stage may hold a
  // host-tier shadow: drop it exactly once so readmission can never
  // resurrect the session, and prefer its rows when they extend past the
  // streamed stash (the swap shadow holds *all* rows produced, not just the
  // delivered ones).
  if (const auto sw = swapped_.find(id); sw != swapped_.end()) {
    const bool dropped = swap_tier_.Drop(id);
    assert(dropped);
    (void)dropped;
    if (sw->second.out_rows.size() > session.retained.size()) {
      session.retained = std::move(sw->second.out_rows);
    }
    swapped_.erase(sw);
  }
  const int64_t retained_rows = static_cast<int64_t>(session.retained.size()) / hidden_;
  RequestResult& result = Finalize(id, status, std::move(reason));
  result.outputs = MatrixF::FromRowMajor(retained_rows, hidden_, std::move(session.retained));
  StreamToCallback(id, /*finished=*/true);
  return true;
}

void ServingEngine::SweepDeadlines() {
  // Snapshot the expired ids first: Terminate mutates running_ and the
  // scheduler backlog (and may fire reentrant session callbacks).
  std::vector<std::pair<int64_t, int64_t>> expired;  // (id, deadline_steps)
  for (int64_t id : running_) {
    const Request& r = sequences_.at(id).request;
    if (r.deadline_steps > 0 && step_ >= r.arrival_step + r.deadline_steps) {
      expired.emplace_back(id, r.deadline_steps);
    }
  }
  for (const Request& r : scheduler_.pending_requests()) {
    if (r.deadline_steps > 0 && step_ >= r.arrival_step + r.deadline_steps) {
      expired.emplace_back(r.id, r.deadline_steps);
    }
  }
  for (const auto& [id, deadline] : expired) {
    Terminate(id, RequestStatus::kTimedOut,
              "deadline exceeded (" + std::to_string(deadline) + " steps)");
  }
}

int64_t ServingEngine::ProgressMark(int64_t id) const {
  // Residency itself counts as progress (admission moved the session), and
  // every consumed row advances the mark; queued/evicted sessions hold at 0,
  // so backlog starvation is visible to the watchdog — by design.
  const auto it = sequences_.find(id);
  return it == sequences_.end() ? 0 : 1 + it->second.consumed;
}

void ServingEngine::WatchdogSweep() {
  if (config_.watchdog_steps <= 0) {
    return;
  }
  for (auto& [id, session] : sessions_) {
    if (session.last_progress_mark < 0 || IsTerminal(Status(id))) {
      continue;  // not yet arrived (its clock starts at arrival), or done
    }
    const int64_t mark = ProgressMark(id);
    if (mark != session.last_progress_mark) {
      session.last_progress_mark = mark;
      session.last_progress_step = step_;
      session.watchdog_tripped = false;  // re-arm for the next stall episode
      continue;
    }
    if (!session.watchdog_tripped &&
        step_ - session.last_progress_step >= config_.watchdog_steps) {
      session.watchdog_tripped = true;
      ++watchdog_trips_;
      obs::TraceAsyncInstant("request", "watchdog_trip", obs::TraceDetail::kRequest, id, step_);
      if (config_.watchdog_hook) {
        config_.watchdog_hook(id, step_);
      }
    }
  }
}

void ServingEngine::ChargeRetry(int attempt) {
  assert(attempt >= 1);
  ++fault_retries_total_;
  // Exponential backoff, capped so a pathological schedule cannot overflow.
  fault_backoff_ms_total_ +=
      config_.fault_backoff_ms * static_cast<double>(1ll << std::min(attempt - 1, 20));
}

bool ServingEngine::FailShard(int shard) {
  if (live_shards_.size() <= 1) {
    return false;  // the last shard standing keeps serving
  }
  const auto pos = std::find(live_shards_.begin(), live_shards_.end(), shard);
  if (pos == live_shards_.end()) {
    return false;  // unknown or already dead
  }
  const int logical = static_cast<int>(pos - live_shards_.begin());
  // Re-place the dead shard's experts using the loads actually observed so
  // far; before any routing happened the rebalance falls back to uniform.
  const std::vector<int64_t>& tokens = metrics_.expert_tokens();
  shard_plan_ = FailoverPlan(shard_plan_, logical,
                             std::vector<double>(tokens.begin(), tokens.end()));
  assert(shard_plan_.IsValid());
  live_shards_.erase(pos);
  if (stalled_shard_ == logical) {
    stalled_shard_ = -1;  // a dead shard cannot also stall
  } else if (stalled_shard_ > logical) {
    --stalled_shard_;  // logical ids above the dead shard compact down
  }
  ++shard_failovers_;
  return true;
}

int64_t ServingEngine::DecodeResidentRows() const {
  int64_t rows = 0;
  for (int64_t id : running_) {
    const Sequence& seq = sequences_.at(id);
    if (seq.consumed >= seq.request.prompt_len) {
      ++rows;
    }
  }
  return rows;
}

ResidentSnapshot ServingEngine::Resident(int64_t growth_pages) const {
  ResidentSnapshot snap;
  snap.sequences = static_cast<int64_t>(running_.size());
  snap.decode_rows = DecodeResidentRows();
  // Cold prefix-cache pages (held by the tree alone) are handed back on
  // demand by ReclaimFor, so for admission purposes they are free.
  snap.used_pages =
      cache_.allocator().used_pages() + growth_pages -
      (prefix_cache_ != nullptr ? prefix_cache_->reclaimable_pages(cache_.allocator()) : 0);
  for (int64_t id : running_) {
    const int64_t total = sequences_.at(id).request.total_tokens();
    snap.tokens += total;
    snap.reserved_pages += PagesForTokens(total, config_.scheduler.page_tokens);
  }
  return snap;
}

std::vector<int64_t> ServingEngine::PlanResidentRows() const {
  const SchedulerConfig& cfg = config_.scheduler;
  std::vector<int64_t> plan(running_.size(), 0);
  int64_t budget_left = cfg.token_budget;
  // Decode rows first: one per decode-phase resident. Admission charges
  // every sequence at least one row, so these always fit the budget.
  int64_t decode_rows = 0;
  for (size_t i = 0; i < running_.size(); ++i) {
    const Sequence& seq = sequences_.at(running_[i]);
    if (seq.consumed >= seq.request.prompt_len) {
      plan[i] = 1;
      budget_left -= 1;
      ++decode_rows;
    }
  }
  // Then the next prompt chunk of each mid-prefill resident, admission
  // order, out of the leftover budget — resident prefills outrank new
  // admissions, so a chunked prompt can never be starved by later arrivals.
  // A plan of 0 rows (budget exhausted) sits the iteration out. The decode
  // row count feeds the decode-priority chunk policy: chunks shrink while
  // decode rows are resident so decode latency is insulated from long
  // prompts (a no-op under the fixed policy).
  for (size_t i = 0; i < running_.size(); ++i) {
    const Sequence& seq = sequences_.at(running_[i]);
    if (seq.consumed < seq.request.prompt_len) {
      plan[i] = PrefillChunkRows(seq.request.prompt_len - seq.consumed, budget_left, cfg,
                                 decode_rows);
      budget_left -= plan[i];
    }
  }
  assert(budget_left >= 0);
  return plan;
}

int64_t ServingEngine::PlannedGrowthPages(const std::vector<int64_t>& plan) const {
  int64_t pages = 0;
  for (size_t i = 0; i < running_.size(); ++i) {
    // PagesToPrepareWrite, not PagesToExtend: a sequence about to append to a
    // still-shared partial tail page needs one extra page for the
    // copy-on-write split.
    pages += cache_.allocator().PagesToPrepareWrite(running_[i], plan[i]);
  }
  return pages;
}

void ServingEngine::Preempt(int64_t id) {
  Sequence& seq = sequences_.at(id);
  // Rows already streamed to the client are frozen: stash that prefix so a
  // Cancel() racing the recompute can still materialize them in the
  // terminal result. (Monotone: an earlier preemption may have retained
  // more than this recompute had re-produced.)
  SessionState& session = sessions_.at(id);
  const size_t keep = std::min(static_cast<size_t>(session.delivered * hidden_),
                               seq.out_rows.size());
  if (keep > session.retained.size()) {
    session.retained.assign(seq.out_rows.begin(),
                            seq.out_rows.begin() + static_cast<int64_t>(keep));
  }
  const int64_t tokens = seq.consumed;
  bool swapped_out = false;
  if (swap_enabled_ && tokens > 0 && swap_tier_.CanHold(tokens)) {
    // Swap path: KV rows and the produced outputs move to the host tier and
    // are restored bit-exactly at readmission — no recompute. The transfer is
    // charged against the device's host link for the bytes actually moved.
    // An injected transfer failure is retried with exponential backoff; past
    // the retry limit the victim falls through to the recompute path below.
    bool transfer_ok = true;
    for (int attempt = 1; injector_.ShouldFail(FaultPoint::kSwapOut); ++attempt) {
      ChargeRetry(attempt);
      if (attempt > config_.fault_retry_limit) {
        transfer_ok = false;
        break;
      }
    }
    if (transfer_ok) {
      swap_tier_.SwapOut(id, cache_, tokens);
      if (const FaultDecision d = injector_.Probe(FaultPoint::kSwapCorrupt); d.fire) {
        // Deterministic bit flip in the parked pages; the per-page checksum
        // catches it at swap-in and forces a recompute instead of serving
        // corrupted KV state.
        const uint64_t salt =
            d.arg != 0 ? static_cast<uint64_t>(d.arg)
                       : static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ull ^
                             static_cast<uint64_t>(step_);
        swap_tier_.CorruptEntry(id, salt);
      }
      SwappedSeq& shadow = swapped_[id];
      shadow.out_rows = std::move(seq.out_rows);
      shadow.consumed = tokens;
      const int64_t bytes = swap_tier_.BytesForTokens(tokens);
      const double ms = SwapTransferMs(bytes);
      step_swap_out_bytes_ += static_cast<double>(bytes);
      step_swap_ms_ += ms;
      metrics_.OnSwapOut(id, step_, static_cast<double>(bytes), ms);
      swapped_out = true;
    }
  }
  if (!swapped_out && prefix_cache_ != nullptr) {
    // Recompute fallback: at least donate the computed prefix to the radix
    // tree, so the readmission (or anyone sharing the prompt) skips it.
    prefix_cache_->Donate(id, seq.request.inputs, tokens, seq.out_rows,
                          cache_.mutable_allocator());
  }
  cache_.Free(id);
  Request request = std::move(seq.request);
  sequences_.erase(id);
  running_.erase(std::find(running_.begin(), running_.end(), id));
  metrics_.OnPreempt(id, step_);
  // Without a swap shadow, undelivered partial outputs are discarded with
  // the Sequence: readmission recomputes the whole prefix, which reproduces
  // the same rows (per-row compute is independent of batch composition).
  scheduler_.Requeue(std::move(request));
}

AdmitHint ServingEngine::AdmitHintFor(const Request& r) const {
  AdmitHint hint;
  if (const auto it = swapped_.find(r.id); it != swapped_.end()) {
    // A swapped victim restores its full progress; its pages come out of the
    // free pool, so there is no resident-page discount.
    hint.ready_tokens = it->second.consumed;
    return hint;
  }
  if (prefix_cache_ != nullptr) {
    int64_t shared_path_pages = 0;
    hint.ready_tokens = prefix_cache_->ProbeTokens(
        r.inputs, r.total_tokens(), &cache_.allocator(), &shared_path_pages);
    // Only path pages live sequences already map are discounted; pinning a
    // tree-only page costs the pool like a fresh allocation, and a shared
    // partial tail additionally owes its copy-on-write page (hence the
    // possible -1).
    hint.resident_pages =
        shared_path_pages -
        (hint.ready_tokens % config_.scheduler.page_tokens != 0 ? 1 : 0);
  }
  return hint;
}

void ServingEngine::ReclaimFor(int64_t pages) {
  if (prefix_cache_ == nullptr || !cache_.allocator().bounded()) {
    return;
  }
  while (cache_.allocator().free_pages() < pages &&
         prefix_cache_->ReclaimOne(cache_.mutable_allocator())) {
  }
}

double ServingEngine::SwapTransferMs(int64_t bytes) const {
  const DeviceSpec& device = cluster_.device(live_shards_.front());
  if (!device.has_host_link()) {
    return 0.0;
  }
  // GB/s over the host attach: bytes / (gbps * 1e9) seconds, plus latency.
  return device.host_latency_us * 1e-3 +
         static_cast<double>(bytes) / (device.host_bandwidth_gbps * 1e6);
}

void ServingEngine::RetireFinished(int64_t id) {
  Sequence& seq = sequences_.at(id);
  if (prefix_cache_ != nullptr) {
    // Donation covers every consumed row — decode rows are teacher-forced
    // inputs too, so a future identical prompt can skip past them as well.
    prefix_cache_->Donate(id, seq.request.inputs, seq.consumed, seq.out_rows,
                          cache_.mutable_allocator());
  }
  RequestResult& result = Finalize(id, RequestStatus::kFinished, "");
  result.outputs = MatrixF::FromRowMajor(seq.consumed, hidden_, std::move(seq.out_rows));
  cache_.Free(id);
  sequences_.erase(id);
  if (const auto pos = std::find(running_.begin(), running_.end(), id);
      pos != running_.end()) {
    running_.erase(pos);
  }
  sessions_.at(id).retained.clear();  // full outputs exist now
  StreamToCallback(id, /*finished=*/true);
}

MatrixF ServingEngine::ForwardBatch(const AssembledBatch& batch, StepAccounting& acct,
                                    bool inline_exec) {
  // Everything below runs over *logical* shards — the survivors after any
  // failover. Logical shard s executes on physical device live_shards_[s];
  // the shard plan spans exactly the logical count, so outputs stay
  // bit-identical across a mid-run failover (the global fold order over
  // experts never changes).
  const int num_shards = static_cast<int>(live_shards_.size());
  acct.Reset(num_shards);

  MatrixF h = batch.rows;
  for (size_t layer = 0; layer < layers_.size(); ++layer) {
    const SamoyedsDecoderLayerWeights& w = layers_[layer];
    obs::ScopedSpan layer_span("engine", "layer", obs::TraceDetail::kFull,
                               static_cast<int64_t>(layer));

    // Attention sub-block, per sequence: normed new rows extend the paged
    // cached prefix (gathered through the page table); causal attention over
    // the full prefix yields the new rows' outputs. Sequences are
    // independent — and own disjoint pages — so they fan out over the pool
    // (or run sequentially on this thread in inline mode: the overlap path's
    // prefill pass must not share the pool with the concurrent decode pass).
    // Each pooled slice runs on the home shard of its batch rows — the same
    // contiguous data-parallel split the all-to-all model and the shared
    // experts use, so the simulation has one notion of where a token lives.
    MatrixF h1 = h;  // residual base
    {
      obs::ScopedSpan attn_span("engine", "attn", obs::TraceDetail::kFull);
      const auto attn_slice = [this, &h, &h1, &w, layer](const BatchSlice& slice) {
        obs::ScopedSpan slice_span("attn", "slice", obs::TraceDetail::kFull,
                                   slice.request_id);
        MatrixF x_new(slice.row_count, hidden_);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            x_new(r, c) = h(slice.row_begin + r, c);
          }
        }
        const MatrixF normed_new = RmsNorm(x_new, w.attn_norm_gamma);

        const int64_t prefix = slice.position_begin;
        MatrixF full(prefix + slice.row_count, hidden_);
        cache_.GatherRows(slice.request_id, static_cast<int64_t>(layer), prefix, full.data());
        std::copy(normed_new.data(), normed_new.data() + normed_new.size(),
                  full.data() + prefix * hidden_);

        const MatrixF attn = AttentionForward(full, w.attention, config_.heads);
        for (int64_t r = 0; r < slice.row_count; ++r) {
          for (int64_t c = 0; c < hidden_; ++c) {
            h1(slice.row_begin + r, c) += attn(prefix + r, c);
          }
          std::copy(normed_new.row(r).begin(), normed_new.row(r).end(),
                    cache_.Row(slice.request_id, static_cast<int64_t>(layer), prefix + r));
        }
      };
      if (inline_exec) {
        for (const BatchSlice& slice : batch.slices) {
          attn_slice(slice);
        }
      } else {
        for (size_t s = 0; s < batch.slices.size(); ++s) {
          const BatchSlice& slice = batch.slices[s];
          pool_.SubmitToShard(TokenHomeShard(slice.row_begin, h.rows(), num_shards),
                              [&attn_slice, slice] { attn_slice(slice); });
        }
        pool_.WaitIdle();
      }
    }

    // MoE sub-block, whole batch: one routing plan covers every sequence's
    // tokens, so each expert runs once per iteration over its tile-split
    // SEL slices, on its placement shard's queue. The inline path runs the
    // sequential kernel chain instead — bit-identical by the pool's
    // fixed-fold-order contract.
    obs::ScopedSpan moe_span("engine", "moe", obs::TraceDetail::kFull);
    MatrixF normed = RmsNorm(h1, w.moe_norm_gamma);
    RoundMatrixToBf16(normed);
    const RoutingPlan plan = config_.routing == RoutingAlgo::kExpertChoice
                                 ? RouteExpertChoice(normed, w.moe.router_gate, config_.top_k)
                                 : Route(normed, w.moe.router_gate, config_.top_k);
    metrics_.OnRoutingPlan(plan);
    SsmmConfig tile_cfg = SsmmConfig::Default();
    if (config_.autotune) {
      tile_cfg = ResolveTileConfig(w.moe, plan);
    }
    AccountMoeLayer(w.moe, plan, tile_cfg, acct);
    if (inline_exec) {
      MoeForwardSamoyeds(normed, w.moe, plan, config_.activation, acct.inline_ws, acct.moe_out);
    } else {
      ParallelMoeForwardSamoyeds(pool_, normed, w.moe, plan, config_.activation, shard_plan_,
                                 acct.pool_ws, acct.moe_out);
    }
    MatrixAxpy(1.0f, acct.moe_out, h1);
    h = std::move(h1);
  }
  return h;
}

void ServingEngine::AccountMoeLayer(const SamoyedsMoeLayerWeights& moe, const RoutingPlan& plan,
                                    const SsmmConfig& tile_cfg, StepAccounting& acct) {
  const auto account_t0 = std::chrono::steady_clock::now();
  const int num_shards = static_cast<int>(live_shards_.size());
  // Each routed expert's gate/up/down SSMM chain is charged to its shard;
  // the tuned tile configuration (autotuned serving) shapes every per-kernel
  // estimate. gate/up select this expert's tokens out of the whole batch
  // panel; down consumes the already-compressed intermediate.
  for (int e = 0; e < static_cast<int>(moe.experts.size()); ++e) {
    const int64_t count = plan.TokensForExpert(e);
    if (count == 0) {
      continue;
    }
    const int s = shard_plan_.shard_of(e);
    const DeviceSpec& device = cluster_.device(live_shards_[static_cast<size_t>(s)]);
    const TimingModel model(device);
    const SamoyedsExpertWeights& w = moe.experts[static_cast<size_t>(e)];
    for (const SamoyedsMatrix* proj : {&w.gate, &w.up}) {
      const GemmShape shape{proj->rows, proj->cols, plan.tokens};
      acct.shard_ms[static_cast<size_t>(s)] +=
          model.Estimate(SamoyedsKernel::Analyze(shape, count, proj->config, tile_cfg, device)
                             .traffic)
              .total_ms;
    }
    const GemmShape down{w.down.rows, w.down.cols, count};
    acct.shard_ms[static_cast<size_t>(s)] +=
        model.Estimate(
                 SamoyedsKernel::Analyze(down, count, w.down.config, tile_cfg, device).traffic)
            .total_ms;
  }
  // Shared experts are replicated: each shard runs them over its home token
  // slice (the data-parallel split the execution path uses too).
  for (const SamoyedsExpertWeights& w : moe.shared_experts) {
    for (int s = 0; s < num_shards; ++s) {
      const int64_t range = ShardHomeBegin(s + 1, plan.tokens, num_shards) -
                            ShardHomeBegin(s, plan.tokens, num_shards);
      if (range == 0) {
        continue;
      }
      const DeviceSpec& device = cluster_.device(live_shards_[static_cast<size_t>(s)]);
      const TimingModel model(device);
      for (const SamoyedsMatrix* proj : {&w.gate, &w.up}) {
        const GemmShape shape{proj->rows, proj->cols, plan.tokens};
        acct.shard_ms[static_cast<size_t>(s)] +=
            model.Estimate(SamoyedsKernel::Analyze(shape, range, proj->config, tile_cfg, device)
                               .traffic)
                .total_ms;
      }
      const GemmShape down{w.down.rows, w.down.cols, range};
      acct.shard_ms[static_cast<size_t>(s)] +=
          model.Estimate(
                   SamoyedsKernel::Analyze(down, range, w.down.config, tile_cfg, device).traffic)
              .total_ms;
    }
  }
  plan.AccumulateTokensPerBucket(shard_plan_.shard_of_expert(), acct.shard_tokens);
  // All-to-all: exact per-shard send/receive volumes feed the busiest-link
  // interconnect roofline (both phases pay link latency + serialization).
  const AllToAllTraffic traffic =
      ComputeAllToAllTraffic(plan, shard_plan_, hidden_, /*bytes_per_value=*/2, acct.a2a_scratch);
  const TimingModel model(cluster_.device(live_shards_.front()));
  acct.alltoall_ms += model.InterconnectPhaseMs(traffic.max_shard_dispatch_bytes) +
                       model.InterconnectPhaseMs(traffic.max_shard_combine_bytes);
  traffic.AddTo(acct.traffic);
  acct.account_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - account_t0)
                          .count();
}

SsmmConfig ServingEngine::ResolveTileConfig(const SamoyedsMoeLayerWeights& moe,
                                            const RoutingPlan& plan) {
  assert(!moe.experts.empty());
  // This layer's SSMM shape: every expert projection is (intermediate x
  // hidden) against this batch's token panel; the SEL length that drives
  // tile efficiency is the hottest expert's token count.
  const SamoyedsMatrix& gate = moe.experts.front().gate;
  const int64_t selected = std::max<int64_t>(1, plan.MaxTokensPerExpert());
  const std::array<int64_t, 5> key{gate.rows, gate.cols, plan.tokens, selected,
                                   static_cast<int64_t>(effective_backend_)};
  // Under overlapped execution the decode and prefill passes resolve
  // concurrently; the lock keeps the cache coherent. Hit/miss ordering
  // between the two passes is timing-dependent, which is why report-byte
  // determinism is a sync-mode (serial-schedule) guarantee.
  std::lock_guard<std::mutex> lock(autotune_mu_);
  auto it = autotune_cache_.find(key);
  const bool cache_hit = it != autotune_cache_.end();
  if (!cache_hit) {
    const GemmShape shape{gate.rows, gate.cols, plan.tokens};
    it = autotune_cache_
             .emplace(key, AutotuneSsmm(shape, selected, gate.config, DefaultDevice(),
                                        effective_backend_))
             .first;
  }
  metrics_.OnAutotune(it->second.default_ms, it->second.simulated_ms, cache_hit);
  return it->second.config;
}

bool ServingEngine::Step() {
  const SchedulerConfig& sched_cfg = config_.scheduler;
  obs::ScopedSpan step_span("engine", "step", obs::TraceDetail::kStep, step_);

  // 1. Ingress: requests whose arrival step has come due join the scheduler.
  for (Request& r : queue_.DrainArrived(step_)) {
    metrics_.OnArrival(r.id, step_, r.prompt_len, r.max_new_tokens);
    // Arm the liveness watchdog: the session's stall clock starts now (a
    // request parked in the ingress queue for a future arrival step is not
    // stalled, it just has not arrived yet).
    SessionState& session = sessions_.at(r.id);
    session.last_progress_mark = 0;
    session.last_progress_step = step_;
    scheduler_.Enqueue(std::move(r));
  }

  // Shard-level fault probes fire once per step, before any planning, so a
  // failover's compacted plan governs the whole iteration.
  injector_.BeginStep(step_);
  if (injector_.enabled()) {
    if (const FaultDecision d = injector_.Probe(FaultPoint::kShardDeath); d.fire) {
      FailShard(static_cast<int>(d.arg));
    }
    if (const FaultDecision d = injector_.Probe(FaultPoint::kShardStall); d.fire) {
      const auto pos = std::find(live_shards_.begin(), live_shards_.end(),
                                 static_cast<int>(d.arg));
      if (pos != live_shards_.end()) {
        stalled_shard_ = static_cast<int>(pos - live_shards_.begin());
      }
    }
    if (const FaultDecision d = injector_.Probe(FaultPoint::kLinkDegrade); d.fire) {
      // Persistent interconnect degradation: every link's bandwidth divides
      // by the rule's factor (the analytic all-to-all model slows down; the
      // functional outputs are untouched).
      const double factor = static_cast<double>(std::max<int64_t>(2, d.arg));
      for (DeviceSpec& dev : cluster_.devices) {
        dev.link_bandwidth_gbps /= factor;
      }
    }
  }

  // Expire overdue sessions before planning so a timed-out resident never
  // occupies batch rows or pages this iteration.
  SweepDeadlines();

  // 2. Plan this iteration's resident rows (decode rows + prefill chunks),
  // then — under a bounded page pool with eviction enabled — make sure the
  // planned rows can get pages. Victims are lowest-priority, then youngest —
  // and may be a grower itself, in which case it simply sits out this batch
  // from the queue head. A lone resident always fits (admission rejects
  // lifetimes beyond the pool), so this terminates with at least one
  // survivor. Evicting re-plans: freed budget can enlarge another
  // resident's prefill chunk.
  std::vector<int64_t> plan;
  int64_t growth_pages = 0;
  {
    obs::ScopedSpan plan_span("engine", "plan", obs::TraceDetail::kStep);
    plan = PlanResidentRows();
    growth_pages = PlannedGrowthPages(plan);
  }
  if (sched_cfg.max_pages > 0 && (sched_cfg.preempt || prefix_cache_ != nullptr)) {
    obs::ScopedSpan evict_span("engine", "evict", obs::TraceDetail::kStep);
    while (cache_.allocator().used_pages() + growth_pages > sched_cfg.max_pages) {
      // Dropping a cold prefix-cache entry is strictly cheaper than evicting
      // a live sequence, so the tree yields first.
      if (prefix_cache_ != nullptr && prefix_cache_->ReclaimOne(cache_.mutable_allocator())) {
        continue;
      }
      if (!sched_cfg.preempt || running_.empty()) {
        break;
      }
      std::vector<VictimCandidate> candidates;
      candidates.reserve(running_.size());
      for (int64_t id : running_) {
        const Sequence& seq = sequences_.at(id);
        const Request& r = seq.request;
        const int64_t slack = r.deadline_steps > 0
                                  ? r.arrival_step + r.deadline_steps - step_
                                  : INT64_MAX;
        candidates.push_back(VictimCandidate{id, r.priority, seq.admit_seq, slack});
      }
      Preempt(candidates[Scheduler::PickVictim(candidates)].id);
      plan = PlanResidentRows();
      growth_pages = PlannedGrowthPages(plan);
    }
  }

  // 3. Admission under the iteration token budget and the resident-token or
  // page-accounting cap. The committed rows are everything the residents
  // planned; an admitted prompt is charged its first chunk.
  int64_t committed_rows = 0;
  std::vector<int64_t> finished_at_admit;
  {
    obs::ScopedSpan admit_span("engine", "admit", obs::TraceDetail::kStep);
    for (int64_t rows : plan) {
      committed_rows += rows;
    }
    AdmitProbe probe;
    if (prefix_cache_ != nullptr || swap_enabled_) {
      probe = [this](const Request& r) { return AdmitHintFor(r); };
    }
    // Decode-phase resident count at admission time, captured once so the
    // scheduler's decode-priority chunk sizing (through ResidentSnapshot)
    // and the engine's first-chunk charge below stay in lockstep — new
    // admissions this step must not perturb the cap mid-pass.
    const int64_t admit_decode_rows = DecodeResidentRows();
    AdmissionDecision decision = scheduler_.Admit(committed_rows, Resident(growth_pages), probe);
    for (Rejection& rejection : decision.rejected) {
      Finalize(rejection.request.id, RequestStatus::kRejected, rejection.reason);
    }
    // Pass 1: create every admitted sequence and map its cached prefix. All
    // matched paths are pinned (CreateMapped references their pages) before
    // any swap-in below can trigger reclaim, so a path probed at admission
    // can never be evicted out from under its own mapping.
    const size_t first_new = running_.size();
    for (Request& r : decision.admitted) {
      const int64_t id = r.id;
      Sequence seq;
      seq.request = std::move(r);
      seq.admit_seq = admit_counter_++;
      auto [it, inserted] = sequences_.emplace(id, std::move(seq));
      assert(inserted);
      (void)inserted;
      running_.push_back(id);
      metrics_.OnAdmit(id, step_);
      Sequence& s = it->second;
      if (prefix_cache_ != nullptr && swapped_.count(id) == 0) {
        PrefixCache::Match match =
            prefix_cache_->Acquire(s.request.inputs, s.request.total_tokens());
        if (match.tokens > 0) {
          const bool mapped = cache_.CreateMapped(id, match.pages, match.tokens);
          assert(mapped);
          (void)mapped;
          s.consumed = match.tokens;
          s.out_rows = std::move(match.out_rows);
          step_prefix_hit_tokens_ += match.tokens;
          metrics_.OnPrefixHit(id, step_, match.tokens);
        }
      }
    }
    // Pass 2: restore swapped-out victims and charge each admission's first
    // prefill chunk, in admission order. A fully cached prompt+decode
    // lifetime retires below — every client-visible row replays from the
    // cache without touching the batch.
    for (size_t i = first_new; i < running_.size(); ++i) {
      const int64_t id = running_[i];
      Sequence& seq = sequences_.at(id);
      if (const auto sw = swapped_.find(id); sw != swapped_.end()) {
        const int64_t tokens = sw->second.consumed;
        // Transient transfer failure: bounded retries with backoff, then the
        // shadow is dropped and the session preempts straight back to the
        // queue head for a full recompute. Its produced rows move into the
        // sequence first so the delivered prefix survives in the stash.
        bool transfer_ok = true;
        for (int attempt = 1; injector_.ShouldFail(FaultPoint::kSwapIn); ++attempt) {
          ChargeRetry(attempt);
          if (attempt > config_.fault_retry_limit) {
            transfer_ok = false;
            break;
          }
        }
        if (!transfer_ok) {
          const bool dropped = swap_tier_.Drop(id);
          assert(dropped);
          (void)dropped;
          seq.out_rows = std::move(sw->second.out_rows);
          swapped_.erase(sw);
          Preempt(id);  // consumed == 0: recompute from row 0 at readmission
          --i;  // running_ compacted over this slot; re-visit the index
          continue;
        }
        ReclaimFor(cache_.allocator().PagesToExtend(id, tokens));
        const bool ok = cache_.Extend(id, tokens);
        assert(ok);
        (void)ok;
        if (!swap_tier_.SwapIn(id, cache_)) {
          // A parked page failed its checksum: the tier dropped the whole
          // entry (never a partial restore). Free the just-extended pages
          // and recompute — corrupted KV state must not reach attention.
          cache_.Free(id);
          seq.out_rows = std::move(sw->second.out_rows);
          swapped_.erase(sw);
          Preempt(id);
          --i;
          continue;
        }
        seq.consumed = tokens;
        seq.out_rows = std::move(sw->second.out_rows);
        swapped_.erase(sw);
        const int64_t bytes = swap_tier_.BytesForTokens(tokens);
        const double ms = SwapTransferMs(bytes);
        step_swap_in_bytes_ += static_cast<double>(bytes);
        step_swap_ms_ += ms;
        metrics_.OnSwapIn(id, step_, static_cast<double>(bytes), ms);
      }
      // First prefill chunk of the *remaining* prompt, sized exactly as the
      // scheduler charged it (the shared PrefillChunkRows and the engine's
      // AdmitHint keep the two row accountings in lockstep). A prompt fully
      // covered by the cache or swap shadow decodes its first row instead:
      // every (re)admission makes forward progress in its own iteration.
      const int64_t remaining =
          std::max<int64_t>(0, seq.request.prompt_len - seq.consumed);
      int64_t chunk = 0;
      if (remaining > 0) {
        chunk = PrefillChunkRows(remaining, sched_cfg.token_budget - committed_rows,
                                 sched_cfg, admit_decode_rows);
        assert(chunk == FirstChunkRows(remaining, sched_cfg, admit_decode_rows));
      } else if (seq.consumed < seq.request.total_tokens()) {
        chunk = 1;
      }
      plan.push_back(chunk);
      committed_rows += chunk;
      if (seq.consumed >= seq.request.prompt_len) {
        // The cache (or swap shadow) already covers row prompt_len - 1: the
        // session's first token is available at admission.
        metrics_.OnFirstOutput(id, step_);
      }
      if (seq.consumed == seq.request.total_tokens()) {
        finished_at_admit.push_back(id);
      }
    }
  }
  assert(committed_rows <= sched_cfg.token_budget || sched_cfg.chunk_tokens <= 0);

  // The positional plan is resolved into id-keyed pairs before anything below
  // can fire a session callback: a reentrant Cancel() erases running_ entries
  // and would desynchronize plan indices, but the pairs stay valid (cancelled
  // ids simply stop resolving).
  std::vector<std::pair<int64_t, int64_t>> planned;
  planned.reserve(running_.size());
  for (size_t i = 0; i < running_.size(); ++i) {
    planned.emplace_back(running_[i], plan[i]);
  }
  // Retire fully-cached admissions (their planned rows are 0); their terminal
  // deltas fire here, before the batch assembles.
  for (int64_t id : finished_at_admit) {
    if (sequences_.count(id) == 0) {
      continue;  // a reentrant Cancel from an earlier terminal delta won
    }
    RetireFinished(id);
  }

  // 4. Assemble the iteration batch from the plan: every sequence's page
  // table is extended to cover its new rows up front (prefill chunks target
  // KV pages directly) so the forward's parallel tasks never mutate
  // allocator state. A 0-row plan (budget-starved prefill) sits out but
  // stays resident. Under overlapped execution a step carrying both phases
  // splits into a decode sub-batch (`batch`) and a prefill sub-batch that
  // execute concurrently; `scatter_order` remembers the original planned
  // part order so the scatter/retire pass below — and therefore every
  // callback, donation, and retirement — runs in the exact order the serial
  // schedule would.
  AssembledBatch batch;
  AssembledBatch prefill_batch;  // empty unless the overlap split engages
  bool split = false;
  std::vector<std::pair<bool, size_t>> scatter_order;  // (from prefill batch, slice index)
  {
    obs::ScopedSpan assemble_span("engine", "assemble", obs::TraceDetail::kStep);
    std::vector<BatchAssembler::Contribution> parts;
    for (const auto& [id, rows] : planned) {
      const auto seq_it = sequences_.find(id);
      if (seq_it == sequences_.end() || rows == 0) {
        continue;  // retired at admission, cancelled reentrantly, or sits out
      }
      Sequence& seq = seq_it->second;
      BatchAssembler::Contribution p;
      p.request_id = id;
      p.source = &seq.request.inputs;
      p.row_begin = seq.consumed;
      p.row_count = rows;
      p.is_prefill = seq.consumed < seq.request.prompt_len;
      parts.push_back(p);
    }

    if (parts.empty()) {
      if (!running_.empty() || scheduler_.pending() > 0) {
        // Every resident sat this iteration out (possible only transiently —
        // e.g. a budget-starved prefill next to retirements), or a swap-in
        // failure requeued a session *after* this step's admission pass
        // emptied the backlog into running_. Never report drained while
        // sessions are live; the backlog readmits next step.
        WatchdogSweep();
        ++step_;
        return true;
      }
      // Idle: fast-forward to the next trace arrival, or report drained.
      const int64_t next = queue_.NextArrivalStep();
      if (next < 0) {
        return false;
      }
      step_ = next;
      return true;
    }

    // An injected allocation failure drops the part from this iteration's
    // batch (the sequence sits the step out) and charges one backoff retry;
    // past the retry limit the sequence is preempted for recompute instead
    // of stalling forever. Kept parts extend as before: cold prefix-cache
    // pages yield first, then the extend cannot fail — decode growth was
    // reserved by the preemption pass and admitted prompts were checked
    // against the page budget.
    std::vector<int64_t> alloc_exhausted;
    for (auto it = parts.begin(); it != parts.end();) {
      if (injector_.ShouldFail(FaultPoint::kKvAlloc)) {
        Sequence& seq = sequences_.at(it->request_id);
        ++seq.fault_retries;
        ChargeRetry(seq.fault_retries);
        if (seq.fault_retries > config_.fault_retry_limit) {
          alloc_exhausted.push_back(it->request_id);
        }
        it = parts.erase(it);
        continue;
      }
      ReclaimFor(cache_.allocator().PagesToPrepareWrite(it->request_id, it->row_count));
      const bool ok = cache_.Extend(it->request_id, it->row_count);
      assert(ok);
      (void)ok;
      sequences_.at(it->request_id).fault_retries = 0;
      ++it;
    }
    for (int64_t id : alloc_exhausted) {
      if (sequences_.count(id) != 0) {
        Preempt(id);
      }
    }
    if (parts.empty()) {
      // Every planned part was dropped by injected faults: the iteration
      // still counts (sessions remain live, retrying next step).
      WatchdogSweep();
      ++step_;
      return true;
    }

    // Overlapped execution engages when both phases are present. It needs
    // per-row outputs independent of batch composition (routing each
    // sub-batch separately must be lossless), so expert-choice routing keeps
    // the serial schedule — the same gate the prefix cache uses.
    if (config_.overlap && config_.routing == RoutingAlgo::kTopK) {
      std::vector<BatchAssembler::Contribution> decode_parts;
      std::vector<BatchAssembler::Contribution> prefill_parts;
      for (const BatchAssembler::Contribution& p : parts) {
        (p.is_prefill ? prefill_parts : decode_parts).push_back(p);
      }
      split = !decode_parts.empty() && !prefill_parts.empty();
      if (split) {
        // The split preserves each sub-batch's relative order, so walking
        // the original parts with two cursors reconstructs the serial order.
        size_t decode_idx = 0;
        size_t prefill_idx = 0;
        for (const BatchAssembler::Contribution& p : parts) {
          scatter_order.emplace_back(p.is_prefill, p.is_prefill ? prefill_idx++ : decode_idx++);
        }
        batch = BatchAssembler::Assemble(decode_parts, hidden_);
        prefill_batch = BatchAssembler::Assemble(prefill_parts, hidden_);
      }
    }
    if (!split) {
      batch = BatchAssembler::Assemble(parts, hidden_);
      for (size_t i = 0; i < batch.slices.size(); ++i) {
        scatter_order.emplace_back(false, i);
      }
    }
  }

  // KV-page traffic this iteration: attention gathers every sequence's
  // cached prefix rows through its page table and appends the new normed
  // rows, once per layer (the ROADMAP's "charge cache gather/append traffic
  // in the analytic timing model").
  const double layer_count = static_cast<double>(layers_.size());
  double kv_read_bytes = 0.0;
  double kv_write_bytes = 0.0;
  for (const AssembledBatch* b : {&batch, &prefill_batch}) {
    for (const BatchSlice& slice : b->slices) {
      kv_read_bytes += static_cast<double>(slice.position_begin * hidden_) * sizeof(float) *
                       layer_count;
      kv_write_bytes += static_cast<double>(slice.row_count * hidden_) * sizeof(float) *
                        layer_count;
    }
  }

  // 5. One forward over the whole batch — or, under the overlap split, the
  // decode sub-batch on the expert pool concurrently with the prefill
  // sub-batch inline on a helper thread. Sound because the two sub-batches
  // cover disjoint sequences owning disjoint KV pages, every page-table
  // extension already happened above, and the weights are const; outputs are
  // bit-identical to the serial schedule because per-row routing and expert
  // execution are independent of batch composition.
  const auto t0 = std::chrono::steady_clock::now();
  MatrixF out;
  MatrixF prefill_out;
  {
    obs::ScopedSpan forward_span("engine", "forward", obs::TraceDetail::kStep,
                                 batch.total_rows() + prefill_batch.total_rows());
    if (split) {
      std::thread prefill_thread([this, &prefill_batch, &prefill_out] {
        obs::SetThreadName("engine.prefill");
        obs::ScopedSpan overlap_span("engine", "prefill_overlap", obs::TraceDetail::kStep,
                                     prefill_batch.total_rows());
        prefill_out = ForwardBatch(prefill_batch, prefill_acct_, /*inline_exec=*/true);
      });
      out = ForwardBatch(batch, acct_, /*inline_exec=*/false);
      prefill_thread.join();
    } else {
      prefill_acct_.Reset(static_cast<int>(live_shards_.size()));
      out = ForwardBatch(batch, acct_, /*inline_exec=*/false);
    }
  }
  const double forward_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  // 6. Scatter outputs back, advance sequences, retire finished ones.
  StepMetrics sm;
  sm.step = step_;
  sm.batch_rows = batch.total_rows() + prefill_batch.total_rows();
  sm.running_sequences = static_cast<int64_t>(running_.size());
  sm.kv_used_pages = cache_.allocator().used_pages();
  sm.kv_frag_tokens = cache_.allocator().FragmentationWaste();
  // Measured forward time, minus the host time the analytic accounting
  // itself spent inside ForwardBatch — simulation bookkeeping must not
  // contaminate the throughput metrics.
  sm.wall_ms = std::max(0.0, forward_ms - (acct_.account_ms + prefill_acct_.account_ms));

  // Analytic step estimate: the per-shard MoE device times accumulated by
  // ForwardBatch, plus the step's KV-page traffic as a bandwidth-roofline
  // stream split data-parallel across shards, plus the interconnect
  // all-to-all. The slowest shard gates the iteration. The serial fields
  // fold the decode and prefill passes elementwise — exactly what a single
  // serial pass would have accumulated — so est_compute_ms/est_alltoall_ms
  // keep their meaning with overlap on; the pipelining benefit is reported
  // separately as est_overlap_saved_ms (serial minus overlapped schedule,
  // never negative by OverlappedPhaseMs's bounds).
  sm.kv_read_bytes = kv_read_bytes;
  sm.kv_write_bytes = kv_write_bytes;
  sm.alltoall_dispatch_bytes =
      acct_.traffic.alltoall_dispatch_bytes + prefill_acct_.traffic.alltoall_dispatch_bytes;
  sm.alltoall_combine_bytes =
      acct_.traffic.alltoall_combine_bytes + prefill_acct_.traffic.alltoall_combine_bytes;
  sm.est_alltoall_ms = acct_.alltoall_ms + prefill_acct_.alltoall_ms;
  // A stalled shard (injected fault) runs this one step at half speed; the
  // slowest-shard gate below then charges the stall to the whole iteration
  // (both passes of a split step execute on the same stalled device).
  if (stalled_shard_ >= 0 && stalled_shard_ < static_cast<int>(acct_.shard_ms.size())) {
    acct_.shard_ms[static_cast<size_t>(stalled_shard_)] *= 2.0;
    prefill_acct_.shard_ms[static_cast<size_t>(stalled_shard_)] *= 2.0;
  }
  stalled_shard_ = -1;
  double max_shard_ms = 0.0;       // serial: decode + prefill back to back
  double max_shard_ov_ms = 0.0;    // overlapped: decode alongside prefill
  for (size_t s = 0; s < acct_.shard_ms.size(); ++s) {
    const double d_ms = acct_.shard_ms[s];
    const double p_ms = prefill_acct_.shard_ms[s];
    max_shard_ms = std::max(max_shard_ms, d_ms + p_ms);
    max_shard_ov_ms = std::max(
        max_shard_ov_ms, TimingModel::OverlappedPhaseMs(d_ms, p_ms, config_.overlap_efficiency));
    acct_.shard_tokens[s] += prefill_acct_.shard_tokens[s];
  }
  const double shard_count = static_cast<double>(live_shards_.size());
  TrafficReport kv;
  kv.gmem_read_bytes = kv_read_bytes / shard_count;
  kv.gmem_write_bytes = kv_write_bytes / shard_count;
  kv.gmem_unique_bytes = (kv_read_bytes + kv_write_bytes) / shard_count;
  // Page-granular gathers stream whole pages — coalesced, bandwidth-bound;
  // give the stand-in kernel a launch shape wide enough to saturate.
  kv.thread_blocks = 1 + static_cast<int64_t>(kv.gmem_unique_bytes) / (128 << 10);
  kv.warps_per_block = 8;
  kv.efficiency = 0.8;
  const double kv_stream_ms =
      TimingModel(cluster_.device(live_shards_.front())).Estimate(kv).total_ms;
  sm.est_compute_ms = max_shard_ms + kv_stream_ms;
  if (config_.overlap) {
    // Overlapped schedule: prefill compute hides under decode compute per
    // shard, then the step's all-to-all transfer hides under the combined
    // compute + KV stream. Each OverlappedPhaseMs is bounded below by the
    // longer phase and above by the serial sum, so saved >= 0 always.
    const double serial_total_ms = sm.est_compute_ms + sm.est_alltoall_ms;
    const double overlapped_total_ms = TimingModel::OverlappedPhaseMs(
        max_shard_ov_ms + kv_stream_ms, sm.est_alltoall_ms, config_.overlap_efficiency);
    sm.est_overlap_saved_ms = std::max(0.0, serial_total_ms - overlapped_total_ms);
  }
  // The metrics' per-shard token tracks keep physical device identity, so a
  // dead shard's track simply flatlines after its failover.
  physical_shard_tokens_.assign(static_cast<size_t>(cluster_.num_shards()), 0);
  for (size_t s = 0; s < acct_.shard_tokens.size(); ++s) {
    physical_shard_tokens_[static_cast<size_t>(live_shards_[s])] += acct_.shard_tokens[s];
  }
  metrics_.OnShardTokens(physical_shard_tokens_);

  obs::ScopedSpan retire_span("engine", "retire", obs::TraceDetail::kStep);
  for (const auto& [from_prefill, slice_idx] : scatter_order) {
    const BatchSlice& slice =
        from_prefill ? prefill_batch.slices[slice_idx] : batch.slices[slice_idx];
    const MatrixF& pass_out = from_prefill ? prefill_out : out;
    // Re-resolved per slice rather than cached across the loop: an OnRows
    // callback fired below may reentrantly Cancel() *another* session whose
    // slice is still pending, erasing its Sequence — its rows from this
    // forward are simply dropped (the cancel wins).
    const auto seq_it = sequences_.find(slice.request_id);
    if (seq_it == sequences_.end()) {
      continue;
    }
    Sequence& seq = seq_it->second;
    (slice.is_prefill ? sm.prefill_rows : sm.decode_rows) += slice.row_count;
    for (int64_t r = 0; r < slice.row_count; ++r) {
      const auto row = pass_out.row(slice.row_begin + r);
      seq.out_rows.insert(seq.out_rows.end(), row.begin(), row.end());
    }
    seq.consumed += slice.row_count;
    if (slice.is_prefill) {
      metrics_.OnPrefillSlice(slice.request_id);
      if (slice.position_begin != 0 || slice.position_end() != seq.request.prompt_len) {
        ++sm.prefill_chunk_slices;  // a partial prompt: chunked prefill in flight
      }
      if (seq.consumed >= seq.request.prompt_len) {
        // The chunk containing row prompt_len - 1 finalized: the session's
        // first token just streamed.
        metrics_.OnFirstOutput(slice.request_id, step_);
      }
    }
    if (seq.consumed == seq.request.total_tokens()) {
      RetireFinished(slice.request_id);
    } else {
      StreamToCallback(slice.request_id, /*finished=*/false);
    }
  }
  // Keep admission order; drop the sequences retired this step. Residents
  // whose plan was 0 rows (budget-starved prefills) never entered the batch
  // but stay resident.
  std::vector<int64_t> still_running;
  still_running.reserve(running_.size());
  for (int64_t id : running_) {
    if (sequences_.count(id) != 0) {
      still_running.push_back(id);
    }
  }
  running_ = std::move(still_running);

  // Counter tracks: one sample per step, after the batch's rows resolved
  // into prefill/decode and retirements freed their pages.
  obs::TraceCounter("engine", "batch_rows", obs::TraceDetail::kStep, sm.batch_rows);
  obs::TraceCounter("engine", "prefill_rows", obs::TraceDetail::kStep, sm.prefill_rows);
  obs::TraceCounter("engine", "decode_rows", obs::TraceDetail::kStep, sm.decode_rows);
  obs::TraceCounter("engine", "resident_sequences", obs::TraceDetail::kStep,
                    static_cast<int64_t>(running_.size()));
  obs::TraceCounter("engine", "backlog", obs::TraceDetail::kStep,
                    queue_.size() + scheduler_.pending());
  obs::TraceCounter("kv", "used_pages", obs::TraceDetail::kStep,
                    cache_.allocator().used_pages());
  if (prefix_cache_ != nullptr) {
    obs::TraceCounter("kv", "shared_pages", obs::TraceDetail::kStep,
                      cache_.allocator().shared_pages());
  }
  if (swap_enabled_) {
    obs::TraceCounter("kv", "host_pages", obs::TraceDetail::kStep,
                      swap_tier_.used_pages());
  }

  // Prefix-sharing / swap activity folded into this step (including anything
  // accumulated during idle fast-forward steps, which record no StepMetrics).
  sm.prefix_hit_tokens = step_prefix_hit_tokens_;
  sm.cow_splits = cache_.cow_splits() - last_cow_splits_;
  sm.shared_pages = cache_.allocator().shared_pages();
  sm.host_pages = swap_tier_.used_pages();
  sm.swap_out_bytes = step_swap_out_bytes_;
  sm.swap_in_bytes = step_swap_in_bytes_;
  sm.est_swap_ms = step_swap_ms_;
  last_cow_splits_ = cache_.cow_splits();
  step_prefix_hit_tokens_ = 0;
  step_swap_out_bytes_ = 0.0;
  step_swap_in_bytes_ = 0.0;
  step_swap_ms_ = 0.0;

  metrics_.OnStep(sm);
  WatchdogSweep();
  ++step_;
  return true;
}

int64_t ServingEngine::RunUntilDrained(int64_t max_steps) {
  int64_t iterations = 0;
  while (Step()) {
    ++iterations;
    if (max_steps > 0 && iterations >= max_steps) {
      break;
    }
  }
  return iterations;
}

ServingReport ServingEngine::Report() const {
  ServingReport rep =
      metrics_.Summarize(config_.scheduler.token_budget, config_.scheduler.max_pages);
  rep.provenance.shards = config_.shards;
  rep.provenance.placement = ShardPlacementName(config_.placement);
  rep.provenance.routing = RoutingAlgoName(config_.routing);
  rep.provenance.policy = SchedulerPolicyName(config_.scheduler.policy);
  rep.provenance.threads = config_.threads;
  rep.provenance.token_budget = config_.scheduler.token_budget;
  rep.provenance.chunk_tokens = config_.scheduler.chunk_tokens;
  rep.provenance.page_tokens = config_.scheduler.page_tokens;
  rep.provenance.max_pages = config_.scheduler.max_pages;
  rep.provenance.prefix_cache = prefix_cache_ != nullptr ? 1 : 0;
  rep.provenance.swap = swap_enabled_ ? 1 : 0;
  rep.provenance.host_pages = config_.host_pages;
  rep.provenance.kernel_backend = KernelBackendName(effective_backend_);
  rep.provenance.overlap = config_.overlap ? 1 : 0;
  rep.provenance.chunk_policy = ChunkPolicyName(config_.scheduler.chunk_policy);
  {
    const DeviceSpec& dev = DefaultDevice();  // the autotuner's model target
    rep.provenance.llc_bytes = dev.l2_bytes;
    rep.provenance.llc_bandwidth_gbps = TimingModel(dev).LlcBandwidthBytesPerS() / 1e9;
    rep.provenance.dram_bandwidth_gbps = dev.dram_bandwidth_gbps;
  }
  rep.injected_faults = injector_.total_fires();
  rep.fault_retries = fault_retries_total_;
  rep.fault_backoff_ms = fault_backoff_ms_total_;
  rep.swap_corruptions = swap_tier_.corruptions_detected();
  rep.shard_failovers = shard_failovers_;
  rep.watchdog_trips = watchdog_trips_;
  return rep;
}

RequestStatus ServingEngine::Status(int64_t id) const {
  if (auto it = results_.find(id); it != results_.end()) {
    return it->second.status;
  }
  if (sequences_.count(id) != 0) {
    return RequestStatus::kRunning;
  }
  return RequestStatus::kQueued;
}

const RequestResult* ServingEngine::Result(int64_t id) const {
  const auto it = results_.find(id);
  return it == results_.end() ? nullptr : &it->second;
}

}  // namespace serving
}  // namespace samoyeds
