#include "src/serving/request_queue.h"

#include <algorithm>

namespace samoyeds {
namespace serving {

void RequestQueue::Push(Request request) {
  std::lock_guard<std::mutex> lock(mu_);
  // Keep the queue ordered by arrival step (producers may push out of order);
  // upper_bound keeps producer order among same-step requests.
  const auto pos = std::upper_bound(queue_.begin(), queue_.end(), request.arrival_step,
                                    [](int64_t step, const Request& r) {
                                      return step < r.arrival_step;
                                    });
  queue_.insert(pos, std::move(request));
}

std::vector<Request> RequestQueue::DrainArrived(int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Request> arrived;
  while (!queue_.empty() && queue_.front().arrival_step <= step) {
    arrived.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return arrived;
}

bool RequestQueue::Remove(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

int64_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

int64_t RequestQueue::NextArrivalStep() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() ? -1 : queue_.front().arrival_step;
}

int64_t RequestQueue::ShedVictim(int incoming_priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t victim = -1;
  int victim_priority = incoming_priority;
  for (const Request& r : queue_) {
    if (r.priority < victim_priority ||
        (victim >= 0 && r.priority == victim_priority && r.id > victim)) {
      victim = r.id;
      victim_priority = r.priority;
    }
  }
  return victim;
}

}  // namespace serving
}  // namespace samoyeds
