// Merges per-request token rows into the single matrix one engine iteration
// forwards, and splits the forward's output back into per-request spans.
//
// The assembled batch is the serving-side analogue of the paper's routed MoE
// input: the MoE sub-block routes and executes all sequences' tokens in one
// pass, so each expert's SSMM call sees one SEL array covering the whole
// iteration (no per-request kernel launches).

#ifndef SAMOYEDS_SRC_SERVING_BATCH_ASSEMBLER_H_
#define SAMOYEDS_SRC_SERVING_BATCH_ASSEMBLER_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace samoyeds {
namespace serving {

// Where one request's rows landed in the assembled batch. Under chunked
// prefill a prompt contributes several prefill slices across iterations
// (position_begin > 0 for every chunk after the first); decode slices are
// always a single row.
struct BatchSlice {
  int64_t request_id = 0;
  int64_t row_begin = 0;       // first row in the batch matrix
  int64_t row_count = 0;
  int64_t position_begin = 0;  // sequence position of the first row
  bool is_prefill = false;     // rows are prompt rows (whole prompt or a chunk)

  // Sequence position one past this slice's last row.
  int64_t position_end() const { return position_begin + row_count; }
};

struct AssembledBatch {
  MatrixF rows;  // (sum of row_count) x hidden
  std::vector<BatchSlice> slices;

  int64_t total_rows() const { return rows.rows(); }
};

class BatchAssembler {
 public:
  // One request's contribution: rows [row_begin, row_begin + row_count) of
  // `*source` (the request's input matrix), starting at sequence position
  // row_begin.
  struct Contribution {
    int64_t request_id = 0;
    const MatrixF* source = nullptr;
    int64_t row_begin = 0;
    int64_t row_count = 0;
    bool is_prefill = false;
  };

  static AssembledBatch Assemble(const std::vector<Contribution>& parts, int64_t hidden);

  // Splits a batch-shaped matrix (e.g. the iteration's output) back into one
  // matrix per slice, in slice order.
  static std::vector<MatrixF> Split(const MatrixF& batch, const std::vector<BatchSlice>& slices);
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_BATCH_ASSEMBLER_H_
