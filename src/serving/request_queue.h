// Ingress queue between request producers (trace replay, RPC front end in a
// real deployment) and the engine's scheduling loop.
//
// The engine drains the queue at the start of each iteration with
// DrainArrived(), which releases only the requests whose arrival_step has
// come due — replaying a trace therefore needs no producer thread. The queue
// itself is mutex-guarded for future multi-threaded front ends, but note
// that ServingEngine::Submit (the validating entry point) is engine-thread
// only; a concurrent producer would have to hand requests to the engine
// thread first.

#ifndef SAMOYEDS_SRC_SERVING_REQUEST_QUEUE_H_
#define SAMOYEDS_SRC_SERVING_REQUEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/serving/request.h"

namespace samoyeds {
namespace serving {

class RequestQueue {
 public:
  void Push(Request request);

  // Removes and returns (in arrival order) every queued request with
  // arrival_step <= step.
  std::vector<Request> DrainArrived(int64_t step);

  // Removes the queued request with `id` (session cancellation before the
  // request ever reached the scheduler). False when no such request queues.
  bool Remove(int64_t id);

  int64_t size() const;
  bool empty() const { return size() == 0; }

  // Earliest arrival_step still queued, or -1 when empty. Lets the engine
  // fast-forward idle steps during trace replay.
  int64_t NextArrivalStep() const;

  // Overload control: id of the queued request to shed so a priority-
  // `incoming_priority` arrival can take its slot — the lowest-priority
  // entry strictly below the incoming class (ties: largest id, i.e. the
  // newest submission). -1 when nothing queued is lower priority (the
  // arrival itself must then be shed).
  int64_t ShedVictim(int incoming_priority) const;

 private:
  mutable std::mutex mu_;
  std::deque<Request> queue_;
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_REQUEST_QUEUE_H_
