#include "src/serving/server.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/tracer.h"

namespace samoyeds {
namespace serving {

const char* ServerClockName(ServerClock c) {
  switch (c) {
    case ServerClock::kVirtual:
      return "virtual";
    case ServerClock::kWall:
      return "wall";
  }
  return "?";
}

bool ParseServerClock(const char* text, ServerClock* out) {
  if (std::strcmp(text, "virtual") == 0) {
    *out = ServerClock::kVirtual;
    return true;
  }
  if (std::strcmp(text, "wall") == 0) {
    *out = ServerClock::kWall;
    return true;
  }
  return false;
}

AsyncServer::AsyncServer(ServingEngine& engine, ServerConfig config)
    : engine_(engine), config_(config) {}

AsyncServer::~AsyncServer() { Stop(); }

void AsyncServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  stop_ = false;
  idle_ = false;
  running_ = true;
  driver_ = std::thread([this] { DriverLoop(); });
}

void AsyncServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!running_) {
    return;
  }
  drain_cv_.wait(lock, [&] { return idle_ && mailbox_.empty(); });
}

void AsyncServer::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_ = true;
    running_ = false;
    worker = std::move(driver_);
    driver_cv_.notify_all();
  }
  worker.join();
  std::lock_guard<std::mutex> lock(mu_);
  stop_ = false;
}

bool AsyncServer::Submit(Request request) {
  const int64_t id = request.id;
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> rlock(rec_mu_);
    if (records_.count(id) > 0) {
      return false;  // duplicate id: first submission owns the record
    }
  }
  if (config_.mailbox_capacity > 0 &&
      static_cast<int64_t>(mailbox_.size()) >= config_.mailbox_capacity) {
    // Mailbox full: shed the lowest-priority pending submission strictly
    // below this arrival's class; if none, shed the arrival itself. Cancels
    // are never shed — a blocked Cancel() caller must always get a verdict.
    int victim = -1;
    for (size_t i = 0; i < mailbox_.size(); ++i) {
      if (mailbox_[i].is_cancel) {
        continue;
      }
      if (victim < 0 ||
          mailbox_[i].request.priority < mailbox_[victim].request.priority) {
        victim = static_cast<int>(i);
      }
    }
    ++shed_submits_;
    if (victim >= 0 && mailbox_[victim].request.priority < request.priority) {
      const int64_t victim_id = mailbox_[victim].request.id;
      mailbox_.erase(mailbox_.begin() + victim);
      --pending_submits_;
      std::lock_guard<std::mutex> rlock(rec_mu_);
      FinalizeRecordLocked(
          records_.at(victim_id), RequestStatus::kShedded,
          "shed: displaced by higher-priority arrival (server mailbox full)");
    } else {
      std::lock_guard<std::mutex> rlock(rec_mu_);
      SessionRecord rec;
      FinalizeRecordLocked(rec, RequestStatus::kShedded,
                           "shed: server mailbox full (overload)");
      records_.emplace(id, std::move(rec));
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> rlock(rec_mu_);
    records_.emplace(id, SessionRecord{});
  }
  // While the driver is not running the submission simply buffers: Start()
  // wakes the driver, which drains the whole backlog in one FIFO batch —
  // exactly the synchronous submit-all-then-drain schedule.
  Op op;
  op.request = std::move(request);
  mailbox_.push_back(std::move(op));
  ++pending_submits_;
  peak_mailbox_depth_ =
      std::max(peak_mailbox_depth_, static_cast<int64_t>(mailbox_.size()));
  driver_cv_.notify_all();
  return true;
}

CancelOutcome AsyncServer::Cancel(int64_t id) {
  auto ticket = std::make_shared<CancelTicket>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A submission still waiting in the mailbox cancels without ever
    // touching the engine.
    for (size_t i = 0; i < mailbox_.size(); ++i) {
      if (!mailbox_[i].is_cancel && mailbox_[i].request.id == id) {
        mailbox_.erase(mailbox_.begin() + i);
        --pending_submits_;
        std::lock_guard<std::mutex> rlock(rec_mu_);
        FinalizeRecordLocked(records_.at(id), RequestStatus::kCancelled,
                             "cancelled by client");
        return CancelOutcome::kCancelled;
      }
    }
    Op op;
    op.is_cancel = true;
    op.cancel_id = id;
    op.ticket = ticket;
    if (!running_) {
      // No driver: this client thread owns the engine, serialized by mu_.
      std::vector<Op> ops;
      ops.push_back(std::move(op));
      ApplyOps(ops);
      return ticket->outcome;
    }
    mailbox_.push_back(std::move(op));
    peak_mailbox_depth_ =
        std::max(peak_mailbox_depth_, static_cast<int64_t>(mailbox_.size()));
    driver_cv_.notify_all();
  }
  std::unique_lock<std::mutex> rlock(rec_mu_);
  client_cv_.wait(rlock, [&] { return ticket->done; });
  return ticket->outcome;
}

ServerPollResult AsyncServer::Poll(int64_t id) {
  std::lock_guard<std::mutex> rlock(rec_mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return ServerPollResult{};  // known == false: never submitted here
  }
  return MakePollResultLocked(it->second);
}

ServerPollResult AsyncServer::WaitTerminal(int64_t id) {
  std::unique_lock<std::mutex> rlock(rec_mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    return ServerPollResult{};
  }
  // std::map iterators are stable; the record is never erased.
  client_cv_.wait(rlock, [&] { return it->second.terminal; });
  return MakePollResultLocked(it->second);
}

bool AsyncServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int64_t AsyncServer::steps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_;
}

int64_t AsyncServer::shed_submits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_submits_;
}

int64_t AsyncServer::peak_mailbox_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_mailbox_depth_;
}

void AsyncServer::DriverLoop() {
  obs::SetThreadName("server.driver");
  bool engine_live = true;  // engine may still have schedulable work
  for (;;) {
    std::vector<Op> ops;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_ && !engine_live && mailbox_.empty()) {
        idle_ = true;
        drain_cv_.notify_all();
        driver_cv_.wait(lock);
      }
      idle_ = false;
      if (stop_ && mailbox_.empty()) {
        break;
      }
      ops.swap(mailbox_);
      pending_submits_ = 0;
      obs::TraceCounter("server", "mailbox_depth", obs::TraceDetail::kStep,
                        static_cast<int64_t>(ops.size()));
    }
    if (!ops.empty()) {
      ApplyOps(ops);
      engine_live = true;
    }
    if (engine_live) {
      engine_live = engine_.Step();
      SweepTerminal();
      std::lock_guard<std::mutex> lock(mu_);
      ++steps_;
    }
  }
  // Driver exiting: nothing will step again; release Drain() waiters.
  std::lock_guard<std::mutex> lock(mu_);
  idle_ = true;
  drain_cv_.notify_all();
}

void AsyncServer::ApplyOps(std::vector<Op>& ops) {
  for (Op& op : ops) {
    if (op.is_cancel) {
      CancelOutcome outcome = engine_.TryCancel(op.cancel_id);
      std::lock_guard<std::mutex> rlock(rec_mu_);
      if (outcome == CancelOutcome::kUnknownId) {
        // The engine never saw the id, but the server may have retired it
        // at the mailbox (shed / cancelled-before-submit): that session
        // exists and is already terminal.
        auto it = records_.find(op.cancel_id);
        if (it != records_.end() && it->second.terminal) {
          outcome = CancelOutcome::kAlreadyTerminal;
        }
      }
      op.ticket->outcome = outcome;
      op.ticket->done = true;
      client_cv_.notify_all();
      continue;
    }
    Request request = std::move(op.request);
    const int64_t id = request.id;
    if (config_.clock == ServerClock::kWall) {
      request.arrival_step = engine_.current_step();
    }
    // Fires on the engine thread inside Step()/Submit(); takes rec_mu_ only.
    auto on_rows = [this, id](const StreamDelta& delta) {
      std::lock_guard<std::mutex> rlock(rec_mu_);
      auto it = records_.find(id);
      if (it == records_.end()) {
        return;
      }
      SessionRecord& rec = it->second;
      const MatrixF& m = delta.rows;
      rec.rows.insert(rec.rows.end(), m.data(), m.data() + m.size());
      if (delta.finished) {
        rec.terminal = true;
        rec.status = engine_.Status(id);
        if (const RequestResult* res = engine_.Result(id)) {
          rec.reason = res->reason;
        }
      } else if (rec.status == RequestStatus::kQueued) {
        rec.status = RequestStatus::kRunning;
      }
      client_cv_.notify_all();
    };
    engine_.Submit(std::move(request), on_rows);
    // Submission-time terminal paths (malformed -> kRejected, ingress
    // overload -> kShedded) may finalize without ever streaming a delta.
    const RequestStatus status = engine_.Status(id);
    std::lock_guard<std::mutex> rlock(rec_mu_);
    SessionRecord& rec = records_.at(id);
    if (IsTerminal(status) && !rec.terminal) {
      std::string reason;
      if (const RequestResult* res = engine_.Result(id)) {
        reason = res->reason;
      }
      FinalizeRecordLocked(rec, status, std::move(reason));
    }
    if (!rec.terminal) {
      live_ids_.push_back(id);
    }
  }
}

void AsyncServer::SweepTerminal() {
  std::lock_guard<std::mutex> rlock(rec_mu_);
  size_t keep = 0;
  bool notify = false;
  for (size_t i = 0; i < live_ids_.size(); ++i) {
    const int64_t id = live_ids_[i];
    SessionRecord& rec = records_.at(id);
    if (!rec.terminal) {
      const RequestStatus status = engine_.Status(id);
      if (IsTerminal(status)) {
        // Admission-time rejection finalizes without a terminal delta.
        rec.terminal = true;
        rec.status = status;
        if (const RequestResult* res = engine_.Result(id)) {
          rec.reason = res->reason;
        }
        notify = true;
      }
    }
    if (!rec.terminal) {
      live_ids_[keep++] = id;
    }
  }
  live_ids_.resize(keep);
  if (notify) {
    client_cv_.notify_all();
  }
}

ServerPollResult AsyncServer::MakePollResultLocked(SessionRecord& rec) {
  ServerPollResult out;
  out.known = true;
  out.terminal = rec.terminal;
  out.status = rec.status;
  out.reason = rec.reason;
  const int64_t hidden = engine_.hidden();
  const int64_t total =
      hidden > 0 ? static_cast<int64_t>(rec.rows.size()) / hidden : 0;
  const int64_t fresh = total - rec.polled_rows;
  if (fresh > 0) {
    out.new_rows = MatrixF(fresh, hidden);
    std::copy(rec.rows.begin() + rec.polled_rows * hidden,
              rec.rows.begin() + total * hidden, out.new_rows.data());
    rec.polled_rows = total;
  }
  out.delivered_rows = rec.polled_rows;
  return out;
}

void AsyncServer::FinalizeRecordLocked(SessionRecord& rec, RequestStatus status,
                                       std::string reason) {
  assert(!rec.terminal);
  rec.terminal = true;
  rec.status = status;
  rec.reason = std::move(reason);
  client_cv_.notify_all();
}

}  // namespace serving
}  // namespace samoyeds
