#include "src/serving/shard_plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <numeric>

namespace samoyeds {
namespace serving {

const char* ShardPlacementName(ShardPlacement p) {
  switch (p) {
    case ShardPlacement::kRoundRobin:
      return "round-robin";
    case ShardPlacement::kCapacityBalanced:
      return "capacity";
    case ShardPlacement::kGateStats:
      return "gate-stats";
  }
  return "?";
}

bool ParseShardPlacement(const char* name, ShardPlacement* out) {
  if (std::strcmp(name, "round-robin") == 0) {
    *out = ShardPlacement::kRoundRobin;
  } else if (std::strcmp(name, "capacity") == 0) {
    *out = ShardPlacement::kCapacityBalanced;
  } else if (std::strcmp(name, "gate-stats") == 0) {
    *out = ShardPlacement::kGateStats;
  } else {
    return false;
  }
  return true;
}

ExpertShardPlan::ExpertShardPlan(std::vector<int> shard_of, int num_shards)
    : shard_of_(std::move(shard_of)), experts_on_(static_cast<size_t>(num_shards)) {
  for (size_t e = 0; e < shard_of_.size(); ++e) {
    experts_on_[static_cast<size_t>(shard_of_[e])].push_back(static_cast<int>(e));
  }
}

ExpertShardPlan ExpertShardPlan::RoundRobin(int num_experts, int num_shards) {
  assert(num_experts >= 0 && num_shards >= 1);
  std::vector<int> shard_of(static_cast<size_t>(num_experts));
  for (int e = 0; e < num_experts; ++e) {
    shard_of[static_cast<size_t>(e)] = e % num_shards;
  }
  return ExpertShardPlan(std::move(shard_of), num_shards);
}

ExpertShardPlan ExpertShardPlan::FromLoads(const std::vector<double>& loads, int num_shards) {
  assert(num_shards >= 1);
  const int num_experts = static_cast<int>(loads.size());
  // LPT greedy: heaviest expert first onto the least-loaded shard. Both
  // orderings break ties deterministically (lower expert id / lower shard
  // id), so the plan is a pure function of the loads.
  std::vector<int> order(static_cast<size_t>(num_experts));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&loads](int a, int b) {
    return loads[static_cast<size_t>(a)] > loads[static_cast<size_t>(b)];
  });
  std::vector<double> shard_load(static_cast<size_t>(num_shards), 0.0);
  std::vector<int> shard_of(static_cast<size_t>(num_experts), 0);
  for (int e : order) {
    int best = 0;
    for (int s = 1; s < num_shards; ++s) {
      if (shard_load[static_cast<size_t>(s)] < shard_load[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    shard_of[static_cast<size_t>(e)] = best;
    shard_load[static_cast<size_t>(best)] += loads[static_cast<size_t>(e)];
  }
  return ExpertShardPlan(std::move(shard_of), num_shards);
}

ExpertShardPlan ExpertShardPlan::CapacityBalanced(const std::vector<int64_t>& expert_bytes,
                                                  int num_shards) {
  std::vector<double> loads(expert_bytes.size());
  for (size_t e = 0; e < expert_bytes.size(); ++e) {
    loads[e] = static_cast<double>(expert_bytes[e]);
  }
  return FromLoads(loads, num_shards);
}

std::vector<double> GateRowNorms(const MatrixF& router_gate) {
  std::vector<double> norms(static_cast<size_t>(router_gate.rows()), 0.0);
  for (int64_t e = 0; e < router_gate.rows(); ++e) {
    double sq = 0.0;
    for (int64_t c = 0; c < router_gate.cols(); ++c) {
      const double v = router_gate(e, c);
      sq += v * v;
    }
    norms[static_cast<size_t>(e)] = std::sqrt(sq);
  }
  return norms;
}

ExpertShardPlan ExpertShardPlan::GateStatsAware(const MatrixF& router_gate, int num_shards) {
  return FromLoads(GateRowNorms(router_gate), num_shards);
}

bool ExpertShardPlan::IsValid() const {
  if (experts_on_.empty()) {
    return false;
  }
  size_t placed = 0;
  std::vector<bool> seen(shard_of_.size(), false);
  for (size_t s = 0; s < experts_on_.size(); ++s) {
    for (int e : experts_on_[s]) {
      if (e < 0 || e >= num_experts() || seen[static_cast<size_t>(e)] ||
          shard_of_[static_cast<size_t>(e)] != static_cast<int>(s)) {
        return false;
      }
      seen[static_cast<size_t>(e)] = true;
      ++placed;
    }
  }
  return placed == shard_of_.size();
}

ExpertShardPlan FailoverPlan(const ExpertShardPlan& plan, int dead_shard,
                             const std::vector<double>& expert_loads) {
  const int shards = plan.num_shards();
  assert(shards >= 2 && dead_shard >= 0 && dead_shard < shards);
  const int num_experts = plan.num_experts();
  const bool have_loads =
      static_cast<int>(expert_loads.size()) == num_experts &&
      std::any_of(expert_loads.begin(), expert_loads.end(),
                  [](double l) { return l > 0.0; });

  // Survivors keep their placement (shard ids above the dead one compact
  // down); their current load seeds the LPT bins so orphans land where
  // capacity actually remains.
  std::vector<int> shard_of(static_cast<size_t>(num_experts), -1);
  std::vector<double> shard_load(static_cast<size_t>(shards - 1), 0.0);
  std::vector<int> orphans;
  for (int e = 0; e < num_experts; ++e) {
    const int s = plan.shard_of(e);
    if (s == dead_shard) {
      orphans.push_back(e);
      continue;
    }
    const int ns = s > dead_shard ? s - 1 : s;
    shard_of[static_cast<size_t>(e)] = ns;
    shard_load[static_cast<size_t>(ns)] +=
        have_loads ? expert_loads[static_cast<size_t>(e)] : 1.0;
  }
  std::stable_sort(orphans.begin(), orphans.end(), [&](int a, int b) {
    if (!have_loads) return false;  // keep ascending expert-id order
    return expert_loads[static_cast<size_t>(a)] > expert_loads[static_cast<size_t>(b)];
  });
  for (int e : orphans) {
    int best = 0;
    for (int s = 1; s < shards - 1; ++s) {
      if (shard_load[static_cast<size_t>(s)] < shard_load[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    shard_of[static_cast<size_t>(e)] = best;
    shard_load[static_cast<size_t>(best)] +=
        have_loads ? expert_loads[static_cast<size_t>(e)] : 1.0;
  }
  return ExpertShardPlan(std::move(shard_of), shards - 1);
}

int64_t ShardHomeBegin(int shard, int64_t tokens, int num_shards) {
  assert(num_shards >= 1 && shard >= 0 && shard <= num_shards);
  return static_cast<int64_t>(shard) * tokens / num_shards;
}

int TokenHomeShard(int64_t token, int64_t tokens, int num_shards) {
  assert(token >= 0 && token < tokens);
  for (int s = num_shards - 1; s > 0; --s) {
    if (token >= ShardHomeBegin(s, tokens, num_shards)) {
      return s;
    }
  }
  return 0;
}

void FillTokenHomeShards(int64_t tokens, int num_shards, std::vector<int>& home) {
  home.resize(static_cast<size_t>(tokens));
  for (int s = 0; s < num_shards; ++s) {
    const int64_t begin = ShardHomeBegin(s, tokens, num_shards);
    const int64_t end = ShardHomeBegin(s + 1, tokens, num_shards);
    for (int64_t t = begin; t < end; ++t) {
      home[static_cast<size_t>(t)] = s;
    }
  }
}

SimCluster SimCluster::Homogeneous(const DeviceSpec& device, int num_shards) {
  assert(num_shards >= 1);
  SimCluster cluster;
  cluster.devices.assign(static_cast<size_t>(num_shards), device);
  return cluster;
}

AllToAllTraffic ComputeAllToAllTraffic(const RoutingPlan& plan,
                                       const ExpertShardPlan& placement, int64_t hidden,
                                       int64_t bytes_per_value, AllToAllScratch& scratch) {
  assert(placement.num_experts() == plan.num_experts);
  AllToAllTraffic traffic;
  const int shards = placement.num_shards();
  if (shards <= 1) {
    return traffic;  // everything is shard-local
  }
  const double row_bytes = static_cast<double>(hidden * bytes_per_value);
  FillTokenHomeShards(plan.tokens, shards, scratch.home);
  scratch.sent.assign(static_cast<size_t>(shards), 0.0);
  scratch.received.assign(static_cast<size_t>(shards), 0.0);

  for (int e = 0; e < plan.num_experts; ++e) {
    const int dst = placement.shard_of(e);
    for (int32_t t : plan.expert_tokens[static_cast<size_t>(e)]) {
      const int src = scratch.home[static_cast<size_t>(t)];
      if (src == dst) {
        continue;  // shard-local dispatch is free
      }
      traffic.dispatch_bytes += row_bytes;
      scratch.sent[static_cast<size_t>(src)] += row_bytes;
      scratch.received[static_cast<size_t>(dst)] += row_bytes;
    }
  }
  for (int s = 0; s < shards; ++s) {
    traffic.max_shard_dispatch_bytes =
        std::max(traffic.max_shard_dispatch_bytes,
                 std::max(scratch.sent[static_cast<size_t>(s)],
                          scratch.received[static_cast<size_t>(s)]));
  }
  // Combine mirrors dispatch: every cross-shard (token, expert) pair sends
  // one weighted output row back, so volumes — and the busiest link — are
  // identical with send/receive swapped.
  traffic.combine_bytes = traffic.dispatch_bytes;
  traffic.max_shard_combine_bytes = traffic.max_shard_dispatch_bytes;
  return traffic;
}

AllToAllTraffic ComputeAllToAllTraffic(const RoutingPlan& plan,
                                       const ExpertShardPlan& placement, int64_t hidden,
                                       int64_t bytes_per_value) {
  AllToAllScratch scratch;
  return ComputeAllToAllTraffic(plan, placement, hidden, bytes_per_value, scratch);
}

}  // namespace serving
}  // namespace samoyeds
