// Iteration-level scheduler, admission control and preemption policy for the
// serving engine.
//
// Every engine iteration runs one forward over a batch that mixes decode
// rows (one per resident sequence) with the prompt rows of newly admitted
// requests — Orca-style continuous batching. The scheduler decides which
// queued requests join the batch this iteration, under these resources:
//
//   * token_budget — the maximum rows a single iteration may carry (the
//     compute-side batch cap; decode rows are committed first).
//   * max_resident_tokens — the legacy memory-side cap on the total footprint
//     of resident sequences, derived from the Table-3 memory model via
//     TokenCapacity().
//   * max_pages — when > 0, admission switches from resident-token counts to
//     paged KV-cache accounting (see src/serving/kv_cache.h): with preemption
//     off a request is admitted only if its full prompt+decode lifetime fits
//     next to the residents' reserved pages (conservative, never evicts);
//     with preemption on only the prompt pages must fit right now
//     (optimistic, vLLM-style), and the engine evicts the lowest-priority /
//     youngest resident when decode growth later runs out of pages.
//
// Requests that can never satisfy these caps are rejected outright — with a
// reason — rather than queued forever.

#ifndef SAMOYEDS_SRC_SERVING_SCHEDULER_H_
#define SAMOYEDS_SRC_SERVING_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/moe/memory_model.h"
#include "src/serving/request.h"

namespace samoyeds {
namespace serving {

enum class SchedulerPolicy {
  kFcfs,           // arrival order, strict head-of-line (no overtaking)
  kSmallestFirst,  // shortest total length first (minimizes mean wait)
  kTokenBudget,    // arrival order, but later requests may fill leftover budget
};

const char* SchedulerPolicyName(SchedulerPolicy p);

// How prefill chunks are sized when chunked prefill is on.
enum class ChunkPolicy {
  // Every chunk is capped at chunk_tokens regardless of batch composition.
  kFixed,
  // Decode-priority: when decode-phase residents hold rows in the iteration,
  // the chunk cap shrinks to max(1, chunk_tokens - decode_rows) so prompt
  // work yields batch slots to latency-sensitive decode instead of competing
  // with it. With no decode rows resident this is exactly kFixed.
  kDecodePriority,
};

const char* ChunkPolicyName(ChunkPolicy p);
bool ParseChunkPolicy(const char* text, ChunkPolicy* out);

struct SchedulerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFcfs;
  // Max rows per iteration (prefill + decode). With chunked prefill off
  // (chunk_tokens == 0) prompts longer than this are rejected outright.
  int64_t token_budget = 256;
  // Sarathi-style chunked prefill: when > 0, a prompt is consumed across
  // iterations in chunks of at most `chunk_tokens` rows (each chunk further
  // capped by the iteration's leftover token budget), interleaved with the
  // resident decode rows — so prompts longer than the token budget are
  // served instead of rejected, and admission charges the first chunk
  // rather than the whole prompt. Chunking is lossless: causal prefix
  // caching makes the chunked outputs bit-identical to one-shot prefill.
  // 0 disables chunking (legacy whole-prompt prefill).
  int64_t chunk_tokens = 0;
  // Chunk sizing policy; only meaningful when chunk_tokens > 0.
  ChunkPolicy chunk_policy = ChunkPolicy::kFixed;
  // Max resident prompt+generation tokens across all running sequences.
  int64_t max_resident_tokens = 1 << 20;
  // 0 = unlimited.
  int64_t max_resident_sequences = 0;
  // Paged KV-cache accounting. page_tokens is the page size in token slots;
  // max_pages > 0 bounds the page pool (0 keeps monolithic token accounting).
  int64_t page_tokens = 16;
  int64_t max_pages = 0;
  // Evict residents under page pressure instead of only refusing admission.
  // Requires max_pages > 0 to have any effect.
  bool preempt = false;
};

// Memory-model-driven admission cap: how many resident tokens fit on
// `device` next to one decoder layer's weights under `framework` storage.
// Returns 0 when even the weights do not fit.
int64_t TokenCapacity(const MoeModelConfig& model, MoeFramework framework,
                      const SamoyedsConfig& sparse_format, const DeviceSpec& device);

// The same capacity expressed as whole KV pages of `page_tokens` slots — the
// page budget admission control packs against when paging is enabled.
int64_t PageCapacity(const MoeModelConfig& model, MoeFramework framework,
                     const SamoyedsConfig& sparse_format, const DeviceSpec& device,
                     int64_t page_tokens);

// Rows the next prefill slice of a sequence with `remaining_prompt` rows
// still unconsumed takes under `config`, given `budget_left` uncommitted
// batch rows this iteration. Chunking off: the whole remaining prompt (the
// caller guaranteed it fits — admission rejected longer prompts). Chunking
// on: min(remaining, chunk cap, budget_left), which may be 0 — the
// sequence sits the iteration out. The chunk cap is chunk_tokens under
// kFixed, max(1, chunk_tokens - decode_rows) under kDecodePriority (where
// `decode_rows` is the iteration's count of decode-phase residents — the
// planner and admission must pass the same value so they can never disagree
// on row accounting). Shared by Scheduler::Admit and the engine's batch
// planner for exactly that lockstep.
int64_t PrefillChunkRows(int64_t remaining_prompt, int64_t budget_left,
                         const SchedulerConfig& config, int64_t decode_rows = 0);

// The batch rows admission charges a not-yet-started prompt: its first
// prefill chunk (the whole prompt with chunking off).
int64_t FirstChunkRows(int64_t prompt_len, const SchedulerConfig& config,
                       int64_t decode_rows = 0);

// Current engine occupancy, input to the admission decision.
struct ResidentSnapshot {
  int64_t sequences = 0;
  int64_t tokens = 0;  // sum of total_tokens() over resident sequences
  // Pages in use right now, including the pages this iteration's decode rows
  // are about to claim (the optimistic / preemptive accounting basis).
  int64_t used_pages = 0;
  // Sum of full-lifetime page needs of residents (the conservative basis).
  int64_t reserved_pages = 0;
  // Decode-phase residents contributing one row each this iteration — the
  // decode-priority chunk policy's input. Held constant through an admission
  // pass (admitted prompts are prefill-phase, so they never change it).
  int64_t decode_rows = 0;
};

// Per-request admission discount supplied by the engine: tokens the request
// does not have to prefill (a prefix-cache hit, or a swapped-out victim's
// restorable progress) and the pages already resident that cover them (shared
// prefix pages admission must not double-charge; 0 for a swap-in, whose pages
// come out of the free pool). Admission subtracts both before the fit test.
struct AdmitHint {
  int64_t ready_tokens = 0;
  int64_t resident_pages = 0;
};
using AdmitProbe = std::function<AdmitHint(const Request&)>;

struct Rejection {
  Request request;
  const char* reason = nullptr;  // static string, why it can never fit
};

struct AdmissionDecision {
  std::vector<Request> admitted;   // join the batch this iteration
  std::vector<Rejection> rejected; // can never fit under the config
};

// One resident sequence as seen by the eviction policy.
struct VictimCandidate {
  int64_t id = 0;
  int priority = 0;       // Request::priority — higher survives longer
  int64_t admit_seq = 0;  // monotone admission counter — larger is younger
  // Steps until the request's deadline (arrival + deadline - now); INT64_MAX
  // for requests without a deadline. Within a priority class the most-slack
  // resident is evicted first: evicting a near-deadline session guarantees
  // the miss, while a slack-rich one can absorb the recompute.
  int64_t slack = INT64_MAX;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& config) : config_(config) {}

  void Enqueue(Request request);
  // Puts a preempted request at the head of the queue so it is readmitted
  // (and recomputed from scratch) as soon as pages free up.
  void Requeue(Request request);

  // Removes the pending request with `id` (session cancellation while
  // awaiting admission). False when `id` is not pending.
  bool Cancel(int64_t id);

  // Decides admissions for the iteration whose resident sequences already
  // committed `committed_rows` batch rows (one decode row per decode-phase
  // resident plus the prefill chunks of residents still mid-prompt).
  // Admitted requests are removed from the pending list; infeasible ones are
  // returned as rejected. An admitted prompt is charged its *first chunk*
  // against the token budget (the whole prompt with chunking off). `probe`,
  // when set, is consulted per candidate for prefix-cache / swap-in
  // discounts (see AdmitHint).
  AdmissionDecision Admit(int64_t committed_rows, const ResidentSnapshot& resident,
                          const AdmitProbe& probe = nullptr);

  // Eviction policy: index of the resident to preempt — lowest priority
  // first, then the most deadline slack (largest slack), then the youngest
  // (largest admit_seq), then the largest id. Deterministic for a
  // deterministic candidate list; with no deadlines in play (all slack
  // defaulted) this is exactly the pre-deadline policy.
  static size_t PickVictim(const std::vector<VictimCandidate>& residents);

  int64_t pending() const { return static_cast<int64_t>(pending_.size()); }
  // The pending list itself — the engine's deadline sweep walks it to expire
  // requests that timed out while waiting for admission (including requeued
  // preemptees). Mutation stays behind Enqueue/Cancel/Admit.
  const std::deque<Request>& pending_requests() const { return pending_; }
  const SchedulerConfig& config() const { return config_; }

 private:
  // nullptr when feasible, else a static human-readable rejection reason.
  const char* RejectReason(const Request& r) const;

  SchedulerConfig config_;
  std::deque<Request> pending_;  // arrival order; requeued preemptees in front
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_SCHEDULER_H_
