// Iteration-level scheduler and admission control for the serving engine.
//
// Every engine iteration runs one forward over a batch that mixes decode
// rows (one per resident sequence) with the prompt rows of newly admitted
// requests — Orca-style continuous batching. The scheduler decides which
// queued requests join the batch this iteration, under two resources:
//
//   * token_budget — the maximum rows a single iteration may carry (the
//     compute-side batch cap; decode rows are committed first).
//   * max_resident_tokens — the memory-side cap on the total footprint of
//     resident sequences (prompt + generated KV slots), derived from the
//     Table-3 memory model via TokenCapacity().
//
// Requests that can never satisfy these caps are rejected outright rather
// than queued forever.

#ifndef SAMOYEDS_SRC_SERVING_SCHEDULER_H_
#define SAMOYEDS_SRC_SERVING_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/moe/memory_model.h"
#include "src/serving/request.h"

namespace samoyeds {
namespace serving {

enum class SchedulerPolicy {
  kFcfs,           // arrival order, strict head-of-line (no overtaking)
  kSmallestFirst,  // shortest total length first (minimizes mean wait)
  kTokenBudget,    // arrival order, but later requests may fill leftover budget
};

const char* SchedulerPolicyName(SchedulerPolicy p);

struct SchedulerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kFcfs;
  // Max rows per iteration (prefill + decode). Prompts longer than this are
  // rejected (chunked prefill is follow-on work, see ROADMAP).
  int64_t token_budget = 256;
  // Max resident prompt+generation tokens across all running sequences.
  int64_t max_resident_tokens = 1 << 20;
  // 0 = unlimited.
  int64_t max_resident_sequences = 0;
};

// Memory-model-driven admission cap: how many resident tokens fit on
// `device` next to one decoder layer's weights under `framework` storage.
// Returns 0 when even the weights do not fit.
int64_t TokenCapacity(const MoeModelConfig& model, MoeFramework framework,
                      const SamoyedsConfig& sparse_format, const DeviceSpec& device);

// Current engine occupancy, input to the admission decision.
struct ResidentSnapshot {
  int64_t sequences = 0;
  int64_t tokens = 0;  // sum of total_tokens() over resident sequences
};

struct AdmissionDecision {
  std::vector<Request> admitted;  // join the batch this iteration
  std::vector<Request> rejected;  // can never fit under the config
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& config) : config_(config) {}

  void Enqueue(Request request);

  // Decides admissions for the iteration whose resident sequences will
  // contribute `decode_rows` rows. Admitted requests are removed from the
  // pending list; infeasible ones are returned as rejected.
  AdmissionDecision Admit(int64_t decode_rows, const ResidentSnapshot& resident);

  int64_t pending() const { return static_cast<int64_t>(pending_.size()); }
  const SchedulerConfig& config() const { return config_; }

 private:
  bool Infeasible(const Request& r) const;

  SchedulerConfig config_;
  std::deque<Request> pending_;  // arrival order
};

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_SCHEDULER_H_
