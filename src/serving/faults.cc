#include "src/serving/faults.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace samoyeds {
namespace serving {
namespace {

// splitmix64: tiny, seedable, and statistically fine for fire/no-fire draws.
// Each rule owns one state so adding or removing a rule never perturbs the
// draw sequence of the others.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

struct PointNameEntry {
  const char* name;
  FaultPoint point;
};

constexpr PointNameEntry kPointNames[] = {
    {"kv-alloc", FaultPoint::kKvAlloc},
    {"swap-out", FaultPoint::kSwapOut},
    {"swap-in", FaultPoint::kSwapIn},
    {"swap-corrupt", FaultPoint::kSwapCorrupt},
    {"shard-die", FaultPoint::kShardDeath},
    {"shard-stall", FaultPoint::kShardStall},
    {"link-degrade", FaultPoint::kLinkDegrade},
};

}  // namespace

const char* FaultPointName(FaultPoint p) {
  for (const auto& e : kPointNames) {
    if (e.point == p) return e.name;
  }
  return "?";
}

bool ParseFaultPoint(const char* name, FaultPoint* out) {
  for (const auto& e : kPointNames) {
    if (std::strcmp(e.name, name) == 0) {
      *out = e.point;
      return true;
    }
  }
  return false;
}

bool ParseFaultSchedule(const std::string& spec, std::vector<FaultRule>* rules,
                        std::string* error) {
  std::vector<FaultRule> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      if (spec.empty()) break;  // empty spec = empty schedule
      if (error) *error = "empty fault rule in schedule";
      return false;
    }

    FaultRule rule;
    size_t trig = item.find_first_of("@~");
    if (trig == std::string::npos) {
      if (error) *error = "fault rule '" + item + "' lacks '@step' or '~prob'";
      return false;
    }
    std::string name = item.substr(0, trig);
    if (!ParseFaultPoint(name.c_str(), &rule.point)) {
      if (error) *error = "unknown fault point '" + name + "'";
      return false;
    }

    // Tail: number, then optional ":arg", then optional "xN".
    std::string tail = item.substr(trig + 1);
    std::string num = tail, arg_str, fires_str;
    size_t colon = num.find(':');
    if (colon != std::string::npos) {
      arg_str = num.substr(colon + 1);
      num = num.substr(0, colon);
    }
    // "x" binds to whichever segment is last (arg if present, else the
    // trigger number).
    std::string* last = arg_str.empty() && colon == std::string::npos
                            ? &num
                            : &arg_str;
    size_t x = last->find('x');
    if (x != std::string::npos) {
      fires_str = last->substr(x + 1);
      *last = last->substr(0, x);
    }

    char* end = nullptr;
    if (item[trig] == '@') {
      rule.at_step = std::strtoll(num.c_str(), &end, 10);
      if (num.empty() || *end != '\0' || rule.at_step < 0) {
        if (error) *error = "bad step in fault rule '" + item + "'";
        return false;
      }
    } else {
      rule.probability = std::strtod(num.c_str(), &end);
      if (num.empty() || *end != '\0' || rule.probability < 0.0 ||
          rule.probability > 1.0) {
        if (error) *error = "bad probability in fault rule '" + item + "'";
        return false;
      }
    }
    if (!arg_str.empty()) {
      rule.arg = std::strtoll(arg_str.c_str(), &end, 10);
      if (*end != '\0') {
        if (error) *error = "bad arg in fault rule '" + item + "'";
        return false;
      }
    }
    if (!fires_str.empty()) {
      rule.max_fires = std::strtoll(fires_str.c_str(), &end, 10);
      if (*end != '\0' || rule.max_fires <= 0) {
        if (error) *error = "bad fire budget in fault rule '" + item + "'";
        return false;
      }
    }
    // shard-die / shard-stall / link-degrade with a step trigger but no
    // explicit budget should fire once, not on every probe of that step.
    if (rule.max_fires < 0 && rule.at_step >= 0 &&
        (rule.point == FaultPoint::kShardDeath ||
         rule.point == FaultPoint::kShardStall ||
         rule.point == FaultPoint::kLinkDegrade)) {
      rule.max_fires = 1;
    }
    if (rule.point == FaultPoint::kLinkDegrade && rule.arg <= 0) {
      rule.arg = 2;  // default: halve the bandwidth
    }
    parsed.push_back(rule);
    if (comma == spec.size()) break;
  }
  *rules = std::move(parsed);
  return true;
}

void FaultInjector::Configure(std::vector<FaultRule> rules, uint64_t seed) {
  rules_.clear();
  fires_.fill(0);
  for (size_t i = 0; i < rules.size(); ++i) {
    RuleState st;
    st.rule = rules[i];
    // Seed each rule independently of the others so schedules compose: the
    // point id and position pin the stream, the golden-ratio stir decorrelates
    // adjacent seeds.
    st.rng = seed ^ (0x9e3779b97f4a7c15ull * (i + 1)) ^
             (static_cast<uint64_t>(st.rule.point) << 32);
    rules_.push_back(st);
  }
}

FaultDecision FaultInjector::Probe(FaultPoint point) {
  for (auto& st : rules_) {
    if (st.rule.point != point) continue;
    if (st.rule.max_fires >= 0 && st.fires >= st.rule.max_fires) continue;
    bool fire = false;
    if (st.rule.at_step >= 0) {
      fire = step_ == st.rule.at_step;
    } else if (st.rule.probability > 0.0) {
      fire = UnitUniform(&st.rng) < st.rule.probability;
    }
    if (!fire) continue;
    ++st.fires;
    ++fires_[static_cast<size_t>(point)];
    return {true, st.rule.arg};
  }
  return {false, 0};
}

int64_t FaultInjector::total_fires() const {
  int64_t total = 0;
  for (int64_t f : fires_) total += f;
  return total;
}

}  // namespace serving
}  // namespace samoyeds
