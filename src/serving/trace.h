// Request traces for the serving engine: file-based replay and synthetic
// generation (Poisson-ish arrivals, uniform prompt/decode lengths).
//
// Trace file format, one request per line, '#' comments:
//   <arrival_step> <prompt_len> <max_new_tokens> [priority [id]]
// The optional priority feeds the preemption policy (higher survives longer;
// omitted = 0). The optional id pins the request's session id (so a client
// can cancel or poll it by a stable name across trace edits); omitted ids
// are assigned sequentially, skipping pinned ones. Duplicate pinned ids are
// a parse error — the engine would refuse the second submission.

#ifndef SAMOYEDS_SRC_SERVING_TRACE_H_
#define SAMOYEDS_SRC_SERVING_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serving/request.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace serving {

struct TraceEntry {
  int64_t arrival_step = 0;
  int64_t prompt_len = 0;
  int64_t max_new_tokens = 0;
  int priority = 0;
  int64_t id = -1;  // pinned session id; -1 = assign sequentially
};

// Parses a trace file; on failure returns an empty vector and sets *error.
// Tolerates CRLF line endings, arbitrary inter-field whitespace, blank
// lines and '#' comments; rejects malformed fields, wrong column counts,
// negative values and duplicate pinned ids, with a file:line error.
std::vector<TraceEntry> ParseTraceFile(const std::string& path, std::string* error);

// Session ids for a parsed trace, in entry order: pinned ids verbatim,
// unpinned entries numbered sequentially from 0 skipping every pinned id.
std::vector<int64_t> AssignTraceIds(const std::vector<TraceEntry>& entries);

// `arrivals_per_step` > 0 spaces requests with geometric inter-arrival gaps
// of mean 1/arrivals_per_step; lengths are uniform in the given ranges.
std::vector<TraceEntry> SyntheticTrace(Rng& rng, int count, double arrivals_per_step,
                                       int64_t prompt_lo, int64_t prompt_hi, int64_t decode_lo,
                                       int64_t decode_hi);

// Materializes a request: bf16-rounded Gaussian input rows for the whole
// prompt + decode horizon (the teacher-forced synthetic workload).
Request MakeRequest(Rng& rng, int64_t id, const TraceEntry& entry, int64_t hidden);

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_TRACE_H_
