// Request traces for the serving engine: file-based replay and synthetic
// generation (Poisson-ish arrivals, uniform prompt/decode lengths).
//
// Trace file format, one request per line, '#' comments:
//   <arrival_step> <prompt_len> <max_new_tokens> [priority]
// The optional priority feeds the preemption policy (higher survives longer;
// omitted = 0).

#ifndef SAMOYEDS_SRC_SERVING_TRACE_H_
#define SAMOYEDS_SRC_SERVING_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serving/request.h"
#include "src/tensor/rng.h"

namespace samoyeds {
namespace serving {

struct TraceEntry {
  int64_t arrival_step = 0;
  int64_t prompt_len = 0;
  int64_t max_new_tokens = 0;
  int priority = 0;
};

// Parses a trace file; on failure returns an empty vector and sets *error.
std::vector<TraceEntry> ParseTraceFile(const std::string& path, std::string* error);

// `arrivals_per_step` > 0 spaces requests with geometric inter-arrival gaps
// of mean 1/arrivals_per_step; lengths are uniform in the given ranges.
std::vector<TraceEntry> SyntheticTrace(Rng& rng, int count, double arrivals_per_step,
                                       int64_t prompt_lo, int64_t prompt_hi, int64_t decode_lo,
                                       int64_t decode_hi);

// Materializes a request: bf16-rounded Gaussian input rows for the whole
// prompt + decode horizon (the teacher-forced synthetic workload).
Request MakeRequest(Rng& rng, int64_t id, const TraceEntry& entry, int64_t hidden);

}  // namespace serving
}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SERVING_TRACE_H_
