#include "src/moe/memory_model.h"

#include <algorithm>
#include <cmath>

namespace samoyeds {

const char* FrameworkName(MoeFramework f) {
  switch (f) {
    case MoeFramework::kTransformers:
      return "Transformers";
    case MoeFramework::kMegaBlocks:
      return "MegaBlocks";
    case MoeFramework::kVllmDs:
      return "vLLM-DS";
    case MoeFramework::kSamoyeds:
      return "Samoyeds";
    case MoeFramework::kPit:
      return "PIT";
  }
  return "?";
}

bool FrameworkSupportsModel(MoeFramework f, const MoeModelConfig& config) {
  if (f == MoeFramework::kMegaBlocks || f == MoeFramework::kVllmDs) {
    return config.activation == Activation::kSilu;
  }
  return true;
}

int64_t MemoryFootprint::MaxBatch(int64_t seq) const {
  const double free_bytes = capacity_bytes - weight_bytes - fixed_bytes;
  if (free_bytes <= 0.0) {
    return 0;
  }
  return static_cast<int64_t>(free_bytes / (static_cast<double>(seq) * bytes_per_token));
}

double SamoyedsBytesPerParam(const SamoyedsConfig& cfg) {
  const double row_frac = static_cast<double>(cfg.n) / cfg.m;
  // data (bf16, half the columns) + 2-bit metadata + uint8 sub-row indices.
  return row_frac * (0.5 * 2.0 + 0.5 * 0.25) + row_frac / cfg.v;
}

MemoryFootprint EstimateFootprint(const MoeModelConfig& model, MoeFramework framework,
                                  const SamoyedsConfig& sparse_format, const DeviceSpec& device) {
  MemoryFootprint fp;
  fp.capacity_bytes = static_cast<double>(device.dram_capacity_bytes) * 0.95;

  const double h = model.hidden;
  const double inter = model.intermediate;
  const double expert_params =
      static_cast<double>(model.num_experts + model.shared_experts) * model.expert_params();
  const double attn_params = 4.0 * h * h;
  const double router_params = static_cast<double>(model.num_experts) * h;

  double bytes_per_param = 2.0;  // bf16
  double runtime_bytes = 0.7e9;  // CUDA context + framework runtime
  switch (framework) {
    case MoeFramework::kTransformers:
      break;
    case MoeFramework::kMegaBlocks:
    case MoeFramework::kVllmDs:
      // Reformatted weight copies for the custom kernels.
      bytes_per_param = 2.4 * 2.0;
      break;
    case MoeFramework::kSamoyeds:
      bytes_per_param = SamoyedsBytesPerParam(sparse_format);
      break;
    case MoeFramework::kPit:
      bytes_per_param = 2.0;
      runtime_bytes += 0.2e9;  // compiler runtime + tile tables
      break;
  }
  // Attention and router stay dense bf16 in every framework.
  fp.weight_bytes = expert_params * bytes_per_param + (attn_params + router_params) * 2.0;
  fp.fixed_bytes = runtime_bytes;

  const double k = model.top_k;
  double act_bytes = 0.0;
  switch (framework) {
    case MoeFramework::kTransformers:
      if (model.hf_dense_expert_fallback) {
        // All experts over all tokens: the E x intermediate intermediate.
        act_bytes = (static_cast<double>(model.num_experts) * inter + 2.5 * inter + 2.0 * h) * 2.0;
      } else {
        // Permuted copy + gate/up/activation intermediates per routed slot.
        act_bytes = k * (2.5 * inter + 2.0 * h) * 2.0;
      }
      break;
    case MoeFramework::kMegaBlocks:
    case MoeFramework::kVllmDs:
      act_bytes = k * (2.0 * inter + 2.0 * h) * 2.0;
      break;
    case MoeFramework::kPit:
      act_bytes = k * (2.0 * inter + 1.5 * h) * 2.0;
      break;
    case MoeFramework::kSamoyeds:
      // Fused gate/up activation, compressed intermediates, no permute dup.
      act_bytes = k * (1.5 * inter + 2.0 * h) * 2.0;
      break;
  }
  // KV cache (4h) plus resident activations (2h) per token.
  fp.bytes_per_token = act_bytes + 6.0 * h;
  return fp;
}

}  // namespace samoyeds
