#include "src/moe/decoder_layer.h"

#include <cassert>
#include <cmath>

#include "src/tensor/bf16.h"

namespace samoyeds {

MatrixF RmsNorm(const MatrixF& x, const std::vector<float>& gamma, float eps) {
  assert(static_cast<int64_t>(gamma.size()) == x.cols());
  MatrixF out(x.rows(), x.cols());
  for (int64_t r = 0; r < x.rows(); ++r) {
    double sum_sq = 0.0;
    for (int64_t c = 0; c < x.cols(); ++c) {
      sum_sq += static_cast<double>(x(r, c)) * x(r, c);
    }
    const float scale =
        1.0f / std::sqrt(static_cast<float>(sum_sq / static_cast<double>(x.cols())) + eps);
    for (int64_t c = 0; c < x.cols(); ++c) {
      out(r, c) = x(r, c) * scale * gamma[static_cast<size_t>(c)];
    }
  }
  return out;
}

DecoderLayerWeights DecoderLayerWeights::Random(Rng& rng, const MoeModelConfig& config) {
  DecoderLayerWeights w;
  w.attn_norm_gamma.assign(static_cast<size_t>(config.hidden), 1.0f);
  w.attention = AttentionWeights::Random(rng, config.hidden);
  w.moe_norm_gamma.assign(static_cast<size_t>(config.hidden), 1.0f);
  w.moe = MoeLayerWeights::Random(rng, config);
  return w;
}

SamoyedsDecoderLayerWeights SamoyedsDecoderLayerWeights::Encode(const DecoderLayerWeights& dense,
                                                                const SamoyedsConfig& cfg) {
  SamoyedsDecoderLayerWeights w;
  w.attn_norm_gamma = dense.attn_norm_gamma;
  w.attention = dense.attention;
  w.moe_norm_gamma = dense.moe_norm_gamma;
  w.moe = SamoyedsMoeLayerWeights::Encode(dense.moe, cfg);
  return w;
}

namespace {

void AddInPlace(MatrixF& acc, const MatrixF& delta) {
  assert(acc.rows() == delta.rows() && acc.cols() == delta.cols());
  for (int64_t i = 0; i < acc.size(); ++i) {
    acc.flat()[static_cast<size_t>(i)] += delta.flat()[static_cast<size_t>(i)];
  }
}

template <typename MoeFn>
MatrixF LayerForward(const MatrixF& x, const std::vector<float>& attn_gamma,
                     const AttentionWeights& attn, const std::vector<float>& moe_gamma,
                     const MatrixF& router_gate, int heads, int top_k, MoeFn moe_fn) {
  // Attention sub-block with pre-norm and residual.
  MatrixF h = x;
  const MatrixF attn_out = AttentionForward(RmsNorm(x, attn_gamma), attn, heads);
  AddInPlace(h, attn_out);

  // MoE sub-block with pre-norm and residual; the normalized activations
  // are rounded to bf16 (the kernels' input format) before routing.
  MatrixF normed = RmsNorm(h, moe_gamma);
  RoundMatrixToBf16(normed);
  const RoutingPlan plan = Route(normed, router_gate, top_k);
  const MatrixF moe_out = moe_fn(normed, plan);
  AddInPlace(h, moe_out);
  return h;
}

}  // namespace

MatrixF DecoderLayerForwardReference(const MatrixF& x, const DecoderLayerWeights& w, int heads,
                                     int top_k, Activation act) {
  return LayerForward(x, w.attn_norm_gamma, w.attention, w.moe_norm_gamma, w.moe.router_gate,
                      heads, top_k, [&](const MatrixF& normed, const RoutingPlan& plan) {
                        return MoeForwardReference(normed, w.moe, plan, act);
                      });
}

MatrixF DecoderLayerForwardSamoyeds(const MatrixF& x, const SamoyedsDecoderLayerWeights& w,
                                    int heads, int top_k, Activation act) {
  return LayerForward(x, w.attn_norm_gamma, w.attention, w.moe_norm_gamma, w.moe.router_gate,
                      heads, top_k, [&](const MatrixF& normed, const RoutingPlan& plan) {
                        return MoeForwardSamoyeds(normed, w.moe, plan, act);
                      });
}

MatrixF DecoderStackForwardReference(const MatrixF& x,
                                     const std::vector<DecoderLayerWeights>& layers, int heads,
                                     int top_k, Activation act) {
  MatrixF h = x;
  for (const auto& layer : layers) {
    h = DecoderLayerForwardReference(h, layer, heads, top_k, act);
  }
  return h;
}

MatrixF DecoderStackForwardSamoyeds(const MatrixF& x,
                                    const std::vector<SamoyedsDecoderLayerWeights>& layers,
                                    int heads, int top_k, Activation act) {
  MatrixF h = x;
  for (const auto& layer : layers) {
    h = DecoderLayerForwardSamoyeds(h, layer, heads, top_k, act);
  }
  return h;
}

}  // namespace samoyeds
