// Functional decoder layer and decoder stack — the end-to-end unit the
// paper measures (§6.3 evaluates a single decoder layer; decoder-only
// models stack identical layers).
//
// Structure per layer (Fig. 1): RMSNorm -> causal self-attention ->
// residual -> RMSNorm -> MoE -> residual. Two execution paths share the
// weights: the dense reference and the Samoyeds dual-side sparse path.

#ifndef SAMOYEDS_SRC_MOE_DECODER_LAYER_H_
#define SAMOYEDS_SRC_MOE_DECODER_LAYER_H_

#include <vector>

#include "src/moe/attention.h"
#include "src/moe/moe_layer.h"

namespace samoyeds {

// y = x * rsqrt(mean(x^2) + eps) * gamma, per row.
MatrixF RmsNorm(const MatrixF& x, const std::vector<float>& gamma, float eps = 1e-5f);

struct DecoderLayerWeights {
  std::vector<float> attn_norm_gamma;
  AttentionWeights attention;
  std::vector<float> moe_norm_gamma;
  MoeLayerWeights moe;

  static DecoderLayerWeights Random(Rng& rng, const MoeModelConfig& config);
};

struct SamoyedsDecoderLayerWeights {
  std::vector<float> attn_norm_gamma;
  AttentionWeights attention;  // attention stays dense (§6.5 prunes MoE only)
  std::vector<float> moe_norm_gamma;
  SamoyedsMoeLayerWeights moe;

  static SamoyedsDecoderLayerWeights Encode(const DecoderLayerWeights& dense,
                                            const SamoyedsConfig& cfg);
};

// One decoder layer, reference path. `heads` divides the hidden size.
MatrixF DecoderLayerForwardReference(const MatrixF& x, const DecoderLayerWeights& w, int heads,
                                     int top_k, Activation act);

// One decoder layer through the Samoyeds dual-side MoE path.
MatrixF DecoderLayerForwardSamoyeds(const MatrixF& x, const SamoyedsDecoderLayerWeights& w,
                                    int heads, int top_k, Activation act);

// A stack of decoder layers (a miniature decoder-only model).
MatrixF DecoderStackForwardReference(const MatrixF& x,
                                     const std::vector<DecoderLayerWeights>& layers, int heads,
                                     int top_k, Activation act);
MatrixF DecoderStackForwardSamoyeds(const MatrixF& x,
                                    const std::vector<SamoyedsDecoderLayerWeights>& layers,
                                    int heads, int top_k, Activation act);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_DECODER_LAYER_H_
