// Functional implementations of the baseline MoE execution strategies.
//
// MoeForwardReference (moe_layer.h) models the Transformers data flow.
// This module adds the other baselines' *computational structures* so that
// each one can be validated end-to-end against the reference:
//
//   * MegaBlocks: tokens of all experts concatenated (permuted) and
//     processed by one block-diagonal block-sparse matmul per projection —
//     the "dMoE" grouped GEMM, built here on BlockSparseMatrix.
//   * vLLM-DS fused kernel: per 16-token-aligned tile, gate+up+activation
//     produced in one pass without materializing separate gate/up tensors,
//     then down-projection with fused weighted accumulation.
//   * PIT: permutation-invariant transformation — tokens gathered into
//     dense micro-tile groups in "shared memory", multiplied densely,
//     scattered back.
//
// All three must reproduce MoeForwardReference exactly (same dense weights,
// same routing): the baselines differ in *execution*, not in semantics.

#ifndef SAMOYEDS_SRC_MOE_BASELINE_FORWARD_H_
#define SAMOYEDS_SRC_MOE_BASELINE_FORWARD_H_

#include "src/moe/moe_layer.h"

namespace samoyeds {

// Block-diagonal grouped execution (MegaBlocks-style). `block_size` is the
// token-block granularity of the block-sparse topology.
MatrixF MoeForwardMegaBlocks(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                             Activation act, int block_size = 64);

// Fused-kernel execution (vLLM-DS-style): token tiles aligned to `tile`
// (padding slots compute on zeros and are discarded).
MatrixF MoeForwardVllmFused(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                            Activation act, int tile = 16);

// Tile-compaction execution (PIT-style): micro-tiles of `micro` tokens are
// compacted into dense tiles before the matmul.
MatrixF MoeForwardPit(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                      Activation act, int micro = 8);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_BASELINE_FORWARD_H_
