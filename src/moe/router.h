// Token routing for the MoE layer (§2.1).
//
// Two entry points:
//   * Route(): the numeric top-k softmax gate used by the functional layer
//     implementations and their tests.
//   * MakeSyntheticPlan(): a shape-only routing plan generator (with an
//     optional popularity skew) used by the analytic benchmarks, where only
//     the per-expert token counts matter.

#ifndef SAMOYEDS_SRC_MOE_ROUTER_H_
#define SAMOYEDS_SRC_MOE_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/formats/sel.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

struct RoutingPlan {
  int num_experts = 0;
  int top_k = 0;
  int64_t tokens = 0;
  // For each expert: the (ascending) token indices routed to it.
  std::vector<std::vector<int32_t>> expert_tokens;
  // For each token: its top_k (expert, gate weight) pairs.
  std::vector<std::vector<std::pair<int, float>>> token_assignments;
  // For each expert: the gate weight of each routed token, parallel to
  // expert_tokens — precomputed by the routing constructors so the weighted
  // scatter-accumulate (MoeScatterAdd) is a straight per-row axpy instead of
  // an O(top_k) assignment lookup per scattered element. May be empty for
  // hand-built plans; consumers fall back to token_assignments.
  std::vector<std::vector<float>> expert_gate;

  int64_t TokensForExpert(int e) const {
    return static_cast<int64_t>(expert_tokens[static_cast<size_t>(e)].size());
  }
  // Selection array view of one expert's tokens — the input half of the
  // Samoyeds dual-side format.
  Selection SelectionForExpert(int e) const;
  // Gate weight of `expert_tokens[e][i]` for expert e: the precomputed
  // vector when present, otherwise the token_assignments lookup.
  float GateWeight(int e, int64_t i) const;
  // Largest per-expert token count (drives padding overheads).
  int64_t MaxTokensPerExpert() const;
  // Routed-token totals per bucket under an expert -> bucket map (the
  // serving engine's expert-shard accounting: bucket = simulated device).
  // `bucket_of[e]` must lie in [0, totals.size()); totals is accumulated
  // into, not cleared, so per-step counts can fold across layers.
  void AccumulateTokensPerBucket(const std::vector<int>& bucket_of,
                                 std::vector<int64_t>& totals) const;
  std::vector<int64_t> TokensPerBucket(const std::vector<int>& bucket_of,
                                       int num_buckets) const;
  bool IsConsistent() const;
};

// Numeric top-k routing: logits = x * gate_weight^T, softmax over the top-k
// logits per token (the normalization used by Mixtral-style routers).
// gate_weight is (num_experts x hidden).
RoutingPlan Route(const MatrixF& x, const MatrixF& gate_weight, int top_k);

// Synthetic plan with Zipf-like expert popularity controlled by `skew`
// (0 = uniform). Token assignments get uniform gate weights (1/top_k).
RoutingPlan MakeSyntheticPlan(Rng& rng, int64_t tokens, int num_experts, int top_k,
                              double skew = 0.0);

// Expert-choice routing (Zhou et al., NeurIPS'22 — the alternative routing
// family §7 cites): instead of tokens picking experts, each expert picks
// its top-capacity tokens by affinity, guaranteeing perfect load balance.
// capacity = tokens * top_k_equiv / num_experts. Tokens may end up with
// fewer (even zero) or more than top_k_equiv experts, so the resulting plan
// satisfies IsBalancedConsistent() rather than IsConsistent(); per-token
// gate weights are softmax-normalized over the experts that chose it.
RoutingPlan RouteExpertChoice(const MatrixF& x, const MatrixF& gate_weight, int top_k_equiv);

// Consistency for expert-choice plans: ascending valid token lists, exact
// per-expert capacity, normalized weights for every assigned token.
bool IsBalancedConsistent(const RoutingPlan& plan);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_ROUTER_H_
