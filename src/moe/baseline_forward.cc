#include "src/moe/baseline_forward.h"

#include <cassert>

#include "src/formats/block_sparse.h"
#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"

namespace samoyeds {

namespace {

MatrixF GatherRows(const MatrixF& x, const std::vector<int32_t>& rows) {
  MatrixF out(static_cast<int64_t>(rows.size()), x.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t c = 0; c < x.cols(); ++c) {
      out(static_cast<int64_t>(i), c) = x(rows[i], c);
    }
  }
  return out;
}

MatrixF GatedActivationBf16(const MatrixF& gate_out, const MatrixF& up_out, Activation act) {
  MatrixF h(gate_out.rows(), gate_out.cols());
  for (int64_t r = 0; r < h.rows(); ++r) {
    for (int64_t c = 0; c < h.cols(); ++c) {
      h(r, c) = RoundToBf16(ApplyActivation(act, gate_out(r, c)) * up_out(r, c));
    }
  }
  return h;
}

float GateWeight(const RoutingPlan& plan, int64_t token, int expert) {
  for (const auto& [e, w] : plan.token_assignments[static_cast<size_t>(token)]) {
    if (e == expert) {
      return w;
    }
  }
  return 0.0f;
}

void WeightedScatter(const MatrixF& expert_out, const std::vector<int32_t>& tokens,
                     const RoutingPlan& plan, int expert, MatrixF& out) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    const float w = GateWeight(plan, tokens[i], expert);
    for (int64_t c = 0; c < out.cols(); ++c) {
      out(tokens[i], c) += w * expert_out(static_cast<int64_t>(i), c);
    }
  }
}

void AddSharedExperts(const MatrixF& x, const MoeLayerWeights& w, Activation act, MatrixF& out) {
  const Selection all = Selection::All(x.rows());
  for (const auto& shared : w.shared_experts) {
    const MatrixF shared_out = ExpertForwardDense(x, shared, all, act);
    for (int64_t r = 0; r < out.rows(); ++r) {
      for (int64_t c = 0; c < out.cols(); ++c) {
        out(r, c) += shared_out(r, c);
      }
    }
  }
}

}  // namespace

MatrixF MoeForwardMegaBlocks(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                             Activation act, int block_size) {
  const int64_t hidden = x.cols();
  const int64_t inter = w.experts.front().gate.rows();
  const int num_experts = plan.num_experts;

  // Permutation: expert-major concatenation of routed token rows.
  std::vector<int32_t> perm_tokens;
  std::vector<int> perm_expert;
  for (int e = 0; e < num_experts; ++e) {
    for (int32_t tok : plan.expert_tokens[static_cast<size_t>(e)]) {
      perm_tokens.push_back(tok);
      perm_expert.push_back(e);
    }
  }
  const int64_t routed = static_cast<int64_t>(perm_tokens.size());
  MatrixF out(x.rows(), hidden);
  if (routed > 0) {
    // Stage the block-diagonal operand: row r holds its token's activations
    // in the column stripe of its expert; the block-sparse topology encodes
    // exactly the (token-block, expert) pairs MegaBlocks' dMoE would
    // schedule — off-diagonal blocks are absent, so no padding FLOPs.
    MatrixF staged(routed, static_cast<int64_t>(num_experts) * hidden);
    for (int64_t r = 0; r < routed; ++r) {
      const int64_t off = static_cast<int64_t>(perm_expert[static_cast<size_t>(r)]) * hidden;
      for (int64_t c = 0; c < hidden; ++c) {
        staged(r, off + c) = x(perm_tokens[static_cast<size_t>(r)], c);
      }
    }
    const BlockSparseMatrix bs = BlockSparseMatrix::FromDense(staged, block_size);

    // Stacked weights: [G_0^T; G_1^T; ...] etc., (E*hidden) x inter.
    MatrixF gate_stack(static_cast<int64_t>(num_experts) * hidden, inter);
    MatrixF up_stack(static_cast<int64_t>(num_experts) * hidden, inter);
    for (int e = 0; e < num_experts; ++e) {
      const ExpertWeights& ew = w.experts[static_cast<size_t>(e)];
      for (int64_t r = 0; r < hidden; ++r) {
        for (int64_t c = 0; c < inter; ++c) {
          gate_stack(static_cast<int64_t>(e) * hidden + r, c) = ew.gate(c, r);
          up_stack(static_cast<int64_t>(e) * hidden + r, c) = ew.up(c, r);
        }
      }
    }
    const MatrixF gate_out = bs.Multiply(gate_stack);
    const MatrixF up_out = bs.Multiply(up_stack);
    const MatrixF h = GatedActivationBf16(gate_out, up_out, act);

    // Down projection: the same grouped structure over the intermediate.
    MatrixF staged_h(routed, static_cast<int64_t>(num_experts) * inter);
    for (int64_t r = 0; r < routed; ++r) {
      const int64_t off = static_cast<int64_t>(perm_expert[static_cast<size_t>(r)]) * inter;
      for (int64_t c = 0; c < inter; ++c) {
        staged_h(r, off + c) = h(r, c);
      }
    }
    const BlockSparseMatrix bs_h = BlockSparseMatrix::FromDense(staged_h, block_size);
    MatrixF down_stack(static_cast<int64_t>(num_experts) * inter, hidden);
    for (int e = 0; e < num_experts; ++e) {
      const ExpertWeights& ew = w.experts[static_cast<size_t>(e)];
      for (int64_t r = 0; r < inter; ++r) {
        for (int64_t c = 0; c < hidden; ++c) {
          down_stack(static_cast<int64_t>(e) * inter + r, c) = ew.down(c, r);
        }
      }
    }
    const MatrixF y = bs_h.Multiply(down_stack);

    // Weighted un-permutation.
    for (int64_t r = 0; r < routed; ++r) {
      const int32_t tok = perm_tokens[static_cast<size_t>(r)];
      const float gw = GateWeight(plan, tok, perm_expert[static_cast<size_t>(r)]);
      for (int64_t c = 0; c < hidden; ++c) {
        out(tok, c) += gw * y(r, c);
      }
    }
  }
  AddSharedExperts(x, w, act, out);
  return out;
}

MatrixF MoeForwardVllmFused(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                            Activation act, int tile) {
  MatrixF out(x.rows(), x.cols());
  for (int e = 0; e < plan.num_experts; ++e) {
    const auto& tokens = plan.expert_tokens[static_cast<size_t>(e)];
    if (tokens.empty()) {
      continue;
    }
    const ExpertWeights& ew = w.experts[static_cast<size_t>(e)];
    // Token tiles aligned to `tile`; padding rows are zeros and produce
    // zero contributions.
    for (size_t start = 0; start < tokens.size(); start += static_cast<size_t>(tile)) {
      const size_t end = std::min(tokens.size(), start + static_cast<size_t>(tile));
      std::vector<int32_t> tile_tokens(tokens.begin() + static_cast<std::ptrdiff_t>(start),
                                       tokens.begin() + static_cast<std::ptrdiff_t>(end));
      const MatrixF xs = GatherRows(x, tile_tokens);
      // Fused: gate, up, activation in one pass (no standalone tensors
      // escape the "kernel"); then the down projection with the weighted
      // accumulation fused into the epilogue.
      const MatrixF h = GatedActivationBf16(GemmRef(xs, ew.gate.Transposed()),
                                            GemmRef(xs, ew.up.Transposed()), act);
      const MatrixF y = GemmRef(h, ew.down.Transposed());
      WeightedScatter(y, tile_tokens, plan, e, out);
    }
  }
  AddSharedExperts(x, w, act, out);
  return out;
}

MatrixF MoeForwardPit(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                      Activation act, int micro) {
  MatrixF out(x.rows(), x.cols());
  // PIT gathers sparse micro-tiles into dense compute tiles; the
  // permutation-invariant property means the gather order never changes the
  // result. We emulate by processing each expert's tokens in micro-tile
  // chunks assembled from the (already permutation-invariant) routing
  // lists.
  for (int e = 0; e < plan.num_experts; ++e) {
    const auto& tokens = plan.expert_tokens[static_cast<size_t>(e)];
    const ExpertWeights& ew = w.experts[static_cast<size_t>(e)];
    for (size_t start = 0; start < tokens.size(); start += static_cast<size_t>(micro)) {
      const size_t end = std::min(tokens.size(), start + static_cast<size_t>(micro));
      std::vector<int32_t> group(tokens.begin() + static_cast<std::ptrdiff_t>(start),
                                 tokens.begin() + static_cast<std::ptrdiff_t>(end));
      const MatrixF xs = GatherRows(x, group);
      const MatrixF h = GatedActivationBf16(GemmRef(xs, ew.gate.Transposed()),
                                            GemmRef(xs, ew.up.Transposed()), act);
      const MatrixF y = GemmRef(h, ew.down.Transposed());
      WeightedScatter(y, group, plan, e, out);
    }
  }
  AddSharedExperts(x, w, act, out);
  return out;
}

}  // namespace samoyeds
