// Analytic GPU memory footprint model per inference framework (Table 3).
//
// Max supported batch size is an accounting question: model weights (in the
// framework's storage format) plus per-token activation workspace must fit
// in device memory. The coefficients below encode each framework's
// documented allocation behaviour:
//
//   * Transformers: bf16 dense weights; explicit permutation duplicates the
//     routed tokens and keeps gate/up/activation intermediates alive.
//     OpenMoE's HF implementation computes *all* experts over all tokens
//     (hf_dense_expert_fallback), which is why its max batch collapses to 3
//     and Samoyeds' boost is 18.67x (Table 3).
//   * MegaBlocks / vLLM-DS: dense weights plus reformatted copies for their
//     custom kernels (~2.4 bytes-per-parameter overhead factor), leaner
//     activation workspace. The weight duplication is what makes them OOM
//     on Mixtral-8x22B even at batch 1.
//   * Samoyeds: weights in the Samoyeds sparse format (~0.58 B/param at
//     75%), no permutation copies, compressed intermediates.

#ifndef SAMOYEDS_SRC_MOE_MEMORY_MODEL_H_
#define SAMOYEDS_SRC_MOE_MEMORY_MODEL_H_

#include <cstdint>

#include "src/formats/samoyeds_format.h"
#include "src/moe/model_configs.h"
#include "src/simgpu/device_spec.h"

namespace samoyeds {

enum class MoeFramework {
  kTransformers,
  kMegaBlocks,
  kVllmDs,
  kSamoyeds,
  kPit,
};

const char* FrameworkName(MoeFramework f);

// MegaBlocks and vLLM-DS lack kernels for OpenMoE's activation (§6.2's NS
// entries).
bool FrameworkSupportsModel(MoeFramework f, const MoeModelConfig& config);

struct MemoryFootprint {
  double weight_bytes = 0.0;
  double fixed_bytes = 0.0;            // runtime/context overhead
  double bytes_per_token = 0.0;        // activation + KV workspace
  double capacity_bytes = 0.0;

  // Largest batch (sequences of `seq` tokens) that fits; 0 = OOM at batch 1.
  int64_t MaxBatch(int64_t seq) const;
};

// Bytes per weight parameter in the Samoyeds format for a given config.
double SamoyedsBytesPerParam(const SamoyedsConfig& cfg);

// Footprint of a single decoder layer (the unit §6.3 measures) under the
// given framework.
MemoryFootprint EstimateFootprint(const MoeModelConfig& model, MoeFramework framework,
                                  const SamoyedsConfig& sparse_format, const DeviceSpec& device);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_MEMORY_MODEL_H_
