// Expert MLP: the gate_proj / up_proj / down_proj trio of Fig. 11(a), in
// dense form (reference / Transformers baseline) and Samoyeds-encoded form
// (running through the SSMM kernel).

#ifndef SAMOYEDS_SRC_MOE_EXPERT_H_
#define SAMOYEDS_SRC_MOE_EXPERT_H_

#include "src/core/samoyeds_kernel.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/moe/model_configs.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

float ApplyActivation(Activation act, float x);

// Weight layout: gate/up are (intermediate x hidden), down is
// (hidden x intermediate) — each row produces one output feature, matching
// the y = x W^T convention of the kernels.
struct ExpertWeights {
  MatrixF gate;
  MatrixF up;
  MatrixF down;

  static ExpertWeights Random(Rng& rng, int hidden, int intermediate, float scale = 0.3f);
  // In-place Samoyeds mask on all three projections (for equivalence tests).
  void ApplyMask(const SamoyedsConfig& cfg);
};

struct SamoyedsExpertWeights {
  SamoyedsMatrix gate;
  SamoyedsMatrix up;
  SamoyedsMatrix down;

  static SamoyedsExpertWeights Encode(const ExpertWeights& dense, const SamoyedsConfig& cfg);
};

// y = (act(x G^T) ⊙ (x U^T)) D^T over the *selected rows* of x.
// The intermediate is rounded to bf16 between projections, mirroring the
// on-device storage format. Output has sel.selected() rows.
MatrixF ExpertForwardDense(const MatrixF& x, const ExpertWeights& w, const Selection& sel,
                           Activation act);

// Same computation through the Samoyeds SSMM kernel (dual-side sparse).
MatrixF ExpertForwardSamoyeds(const MatrixF& x, const SamoyedsExpertWeights& w,
                              const Selection& sel, Activation act);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_EXPERT_H_
