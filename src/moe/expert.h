// Expert MLP: the gate_proj / up_proj / down_proj trio of Fig. 11(a), in
// dense form (reference / Transformers baseline) and Samoyeds-encoded form
// (running through the SSMM kernel).
//
// The Samoyeds path stages everything feature-major (tokens are columns):
// one fused pack of the selected token rows feeds both the gate and up
// projections, the gated activation runs in place, and the down projection
// consumes it directly — zero transpose copies between kernels, and with a
// caller-provided SsmmWorkspace, zero steady-state heap allocations.

#ifndef SAMOYEDS_SRC_MOE_EXPERT_H_
#define SAMOYEDS_SRC_MOE_EXPERT_H_

#include "src/core/samoyeds_kernel.h"
#include "src/core/ssmm_workspace.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/moe/model_configs.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

float ApplyActivation(Activation act, float x);

// Weight layout: gate/up are (intermediate x hidden), down is
// (hidden x intermediate) — each row produces one output feature, matching
// the y = x W^T convention of the kernels.
struct ExpertWeights {
  MatrixF gate;
  MatrixF up;
  MatrixF down;

  static ExpertWeights Random(Rng& rng, int hidden, int intermediate, float scale = 0.3f);
  // In-place Samoyeds mask on all three projections (for equivalence tests).
  void ApplyMask(const SamoyedsConfig& cfg);
};

struct SamoyedsExpertWeights {
  SamoyedsMatrix gate;
  SamoyedsMatrix up;
  SamoyedsMatrix down;
  // Kernel-ready packed forms (SsmmPackedA), built once by Encode — weights
  // are immutable after encoding, so no Run ever re-derives them. Empty on
  // hand-assembled weights; the forward falls back to per-call packing.
  SsmmPackedA gate_packed;
  SsmmPackedA up_packed;
  SsmmPackedA down_packed;

  static SamoyedsExpertWeights Encode(const ExpertWeights& dense, const SamoyedsConfig& cfg);
};

// y = (act(x G^T) ⊙ (x U^T)) D^T over the *selected rows* of x.
// The intermediate is rounded to bf16 between projections, mirroring the
// on-device storage format. Output has sel.selected() rows.
MatrixF ExpertForwardDense(const MatrixF& x, const ExpertWeights& w, const Selection& sel,
                           Activation act);

// Same computation through the Samoyeds SSMM kernel (dual-side sparse).
MatrixF ExpertForwardSamoyeds(const MatrixF& x, const SamoyedsExpertWeights& w,
                              const Selection& sel, Activation act);

// Zero-allocation variant: writes rows [out_row_begin, out_row_begin +
// sel.selected()) of `out` (which must already span them; columns ==
// hidden). Per-token results are independent of how tokens are grouped into
// calls, so callers may split one expert's token set across several calls
// (tile-granular scheduling) and get bit-identical rows.
void ExpertForwardSamoyeds(const MatrixF& x, const SamoyedsExpertWeights& w,
                           const Selection& sel, Activation act, SsmmWorkspace& ws,
                           MatrixF& out, int64_t out_row_begin = 0);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_EXPERT_H_
