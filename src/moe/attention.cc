#include "src/moe/attention.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "src/kernels/dense_gemm.h"
#include "src/tensor/gemm_ref.h"

namespace samoyeds {

AttentionWeights AttentionWeights::Random(Rng& rng, int hidden, float scale) {
  AttentionWeights w;
  w.wq = rng.GaussianMatrix(hidden, hidden, scale);
  w.wk = rng.GaussianMatrix(hidden, hidden, scale);
  w.wv = rng.GaussianMatrix(hidden, hidden, scale);
  w.wo = rng.GaussianMatrix(hidden, hidden, scale);
  return w;
}

MatrixF AttentionForward(const MatrixF& x, const AttentionWeights& w, int heads) {
  const int64_t tokens = x.rows();
  const int64_t hidden = x.cols();
  assert(hidden % heads == 0);
  const int64_t head_dim = hidden / heads;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));

  const MatrixF q = GemmRef(x, w.wq.Transposed());
  const MatrixF k = GemmRef(x, w.wk.Transposed());
  const MatrixF v = GemmRef(x, w.wv.Transposed());

  MatrixF ctx(tokens, hidden);
  std::vector<float> scores(static_cast<size_t>(tokens));
  for (int h = 0; h < heads; ++h) {
    const int64_t off = static_cast<int64_t>(h) * head_dim;
    for (int64_t i = 0; i < tokens; ++i) {
      // Causal: attend to positions <= i.
      float max_score = -1e30f;
      for (int64_t j = 0; j <= i; ++j) {
        float dot = 0.0f;
        for (int64_t d = 0; d < head_dim; ++d) {
          dot += q(i, off + d) * k(j, off + d);
        }
        scores[static_cast<size_t>(j)] = dot * inv_sqrt_d;
        max_score = std::max(max_score, scores[static_cast<size_t>(j)]);
      }
      float denom = 0.0f;
      for (int64_t j = 0; j <= i; ++j) {
        scores[static_cast<size_t>(j)] = std::exp(scores[static_cast<size_t>(j)] - max_score);
        denom += scores[static_cast<size_t>(j)];
      }
      for (int64_t d = 0; d < head_dim; ++d) {
        float acc = 0.0f;
        for (int64_t j = 0; j <= i; ++j) {
          acc += scores[static_cast<size_t>(j)] * v(j, off + d);
        }
        ctx(i, off + d) = acc / denom;
      }
    }
  }
  return GemmRef(ctx, w.wo.Transposed());
}

KernelProfile AttentionProfile(int64_t seq, int64_t batch, int hidden, int heads, bool flash) {
  if (heads <= 0) {
    heads = std::max<int>(8, hidden / 128);
  }
  const int64_t tokens = seq * batch;
  // Four projection GEMMs over the whole token batch.
  KernelProfile p = DenseGemmKernel::Analyze({hidden, hidden, tokens});
  TrafficReport proj = p.traffic;
  for (int i = 0; i < 3; ++i) {
    p.traffic += proj;
  }
  p.useful_flops *= 4.0;

  // Score and context matmuls: 2 * seq^2 * hidden MACs each per sequence
  // (causal halves them).
  TrafficReport core;
  const double score_pairs = static_cast<double>(batch) * seq * seq * 0.5;
  const double score_flops = 2.0 * score_pairs * hidden;
  core.mma_flops = 2.0 * score_flops;
  core.uses_sparse_alu = false;
  core.thread_blocks = std::max<int64_t>(1, tokens / 128 * heads);
  core.warps_per_block = 8;
  core.smem_bytes_per_block = 48 << 10;
  core.pipeline_stages = flash ? 3 : 2;
  core.efficiency = flash ? 0.75 : 0.55;
  const double qkv_bytes = 3.0 * static_cast<double>(tokens) * hidden * 2.0;
  if (flash) {
    // Flash-Attention: QKV re-read once per tile wave, no score tensor.
    core.gmem_read_bytes = qkv_bytes * std::max<double>(1.0, static_cast<double>(seq) / 4096.0);
    core.gmem_write_bytes = static_cast<double>(tokens) * hidden * 2.0;
    core.gmem_unique_bytes = qkv_bytes + core.gmem_write_bytes;
    core.simd_flops = score_pairs * heads * 5.0;  // online softmax
  } else {
    // Naive path materializes the (seq x seq x heads) score tensor per
    // sequence, twice (write after QK^T, read for softmax, write, read for
    // PV).
    const double score_bytes = score_pairs * heads * 2.0;
    core.gmem_read_bytes = qkv_bytes + 2.0 * score_bytes;
    core.gmem_write_bytes = static_cast<double>(tokens) * hidden * 2.0 + 2.0 * score_bytes;
    core.gmem_unique_bytes = qkv_bytes + score_bytes + static_cast<double>(tokens) * hidden * 2.0;
    core.simd_flops = score_pairs * heads * 10.0;
  }
  core.smem_bytes = core.gmem_read_bytes * 2.0;
  core.fixed_overhead_us = flash ? 5.0 : 15.0;

  p.traffic += core;
  p.useful_flops += 2.0 * score_flops;
  p.kernel_name = flash ? "attention(flash)" : "attention(naive)";
  return p;
}

KernelProfile NormResidualProfile(int64_t tokens, int hidden) {
  KernelProfile p;
  p.kernel_name = "norm+residual";
  const double bytes = static_cast<double>(tokens) * hidden * 2.0;
  TrafficReport& t = p.traffic;
  // Two norms + two residual adds per decoder layer: each reads and writes
  // the full activation.
  t.gmem_read_bytes = 4.0 * 2.0 * bytes;
  t.gmem_write_bytes = 4.0 * bytes;
  t.gmem_unique_bytes = 2.0 * bytes;
  t.simd_flops = static_cast<double>(tokens) * hidden * 4.0 * 6.0;
  t.thread_blocks = std::max<int64_t>(1, tokens * hidden / 4096);
  t.warps_per_block = 4;
  t.pipeline_stages = 1;
  t.efficiency = 0.85;
  t.fixed_overhead_us = 8.0;
  p.useful_flops = t.simd_flops;
  return p;
}

}  // namespace samoyeds
