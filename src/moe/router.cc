#include "src/moe/router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "src/tensor/gemm_ref.h"

namespace samoyeds {

Selection RoutingPlan::SelectionForExpert(int e) const {
  Selection sel;
  sel.full_size = tokens;
  sel.indices = expert_tokens[static_cast<size_t>(e)];
  return sel;
}

float RoutingPlan::GateWeight(int e, int64_t i) const {
  if (static_cast<int>(expert_gate.size()) == num_experts) {
    return expert_gate[static_cast<size_t>(e)][static_cast<size_t>(i)];
  }
  // Fallback for hand-built plans: find this expert in the token's
  // assignment list.
  const int32_t token = expert_tokens[static_cast<size_t>(e)][static_cast<size_t>(i)];
  for (const auto& [expert, weight] : token_assignments[static_cast<size_t>(token)]) {
    if (expert == e) {
      return weight;
    }
  }
  return 0.0f;
}

int64_t RoutingPlan::MaxTokensPerExpert() const {
  int64_t max_tokens = 0;
  for (const auto& v : expert_tokens) {
    max_tokens = std::max<int64_t>(max_tokens, static_cast<int64_t>(v.size()));
  }
  return max_tokens;
}

void RoutingPlan::AccumulateTokensPerBucket(const std::vector<int>& bucket_of,
                                            std::vector<int64_t>& totals) const {
  assert(static_cast<int>(bucket_of.size()) == num_experts);
  for (int e = 0; e < num_experts; ++e) {
    const int bucket = bucket_of[static_cast<size_t>(e)];
    assert(bucket >= 0 && bucket < static_cast<int>(totals.size()));
    totals[static_cast<size_t>(bucket)] += TokensForExpert(e);
  }
}

std::vector<int64_t> RoutingPlan::TokensPerBucket(const std::vector<int>& bucket_of,
                                                  int num_buckets) const {
  std::vector<int64_t> totals(static_cast<size_t>(num_buckets), 0);
  AccumulateTokensPerBucket(bucket_of, totals);
  return totals;
}

bool RoutingPlan::IsConsistent() const {
  if (static_cast<int>(expert_tokens.size()) != num_experts ||
      static_cast<int64_t>(token_assignments.size()) != tokens) {
    return false;
  }
  int64_t total = 0;
  for (int e = 0; e < num_experts; ++e) {
    int32_t prev = -1;
    for (int32_t t : expert_tokens[static_cast<size_t>(e)]) {
      if (t <= prev || t >= tokens) {
        return false;
      }
      prev = t;
    }
    total += TokensForExpert(e);
  }
  if (total != tokens * top_k) {
    return false;
  }
  if (!expert_gate.empty()) {
    if (static_cast<int>(expert_gate.size()) != num_experts) {
      return false;
    }
    for (int e = 0; e < num_experts; ++e) {
      if (expert_gate[static_cast<size_t>(e)].size() !=
          expert_tokens[static_cast<size_t>(e)].size()) {
        return false;
      }
    }
  }
  for (const auto& assignment : token_assignments) {
    if (static_cast<int>(assignment.size()) != top_k) {
      return false;
    }
    float weight_sum = 0.0f;
    for (const auto& [e, w] : assignment) {
      if (e < 0 || e >= num_experts || w < 0.0f) {
        return false;
      }
      weight_sum += w;
    }
    if (std::fabs(weight_sum - 1.0f) > 1e-4f) {
      return false;
    }
  }
  return true;
}

RoutingPlan Route(const MatrixF& x, const MatrixF& gate_weight, int top_k) {
  assert(x.cols() == gate_weight.cols());
  assert(top_k >= 1 && top_k <= gate_weight.rows());
  const int64_t tokens = x.rows();
  const int num_experts = static_cast<int>(gate_weight.rows());

  RoutingPlan plan;
  plan.num_experts = num_experts;
  plan.top_k = top_k;
  plan.tokens = tokens;
  plan.expert_tokens.resize(static_cast<size_t>(num_experts));
  plan.token_assignments.resize(static_cast<size_t>(tokens));
  plan.expert_gate.resize(static_cast<size_t>(num_experts));

  const MatrixF logits = GemmRef(x, gate_weight.Transposed());  // tokens x experts
  std::vector<int> order(static_cast<size_t>(num_experts));
  for (int64_t t = 0; t < tokens; ++t) {
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&logits, t](int a, int b) {
      return logits(t, a) > logits(t, b);
    });
    // Softmax over the selected top-k logits.
    float max_logit = logits(t, order[0]);
    float denom = 0.0f;
    for (int i = 0; i < top_k; ++i) {
      denom += std::exp(logits(t, order[static_cast<size_t>(i)]) - max_logit);
    }
    auto& assignment = plan.token_assignments[static_cast<size_t>(t)];
    for (int i = 0; i < top_k; ++i) {
      const int e = order[static_cast<size_t>(i)];
      const float w = std::exp(logits(t, e) - max_logit) / denom;
      assignment.emplace_back(e, w);
      plan.expert_tokens[static_cast<size_t>(e)].push_back(static_cast<int32_t>(t));
      plan.expert_gate[static_cast<size_t>(e)].push_back(w);
    }
  }
  return plan;
}

RoutingPlan RouteExpertChoice(const MatrixF& x, const MatrixF& gate_weight, int top_k_equiv) {
  assert(x.cols() == gate_weight.cols());
  const int64_t tokens = x.rows();
  const int num_experts = static_cast<int>(gate_weight.rows());
  const int64_t capacity =
      std::max<int64_t>(1, tokens * top_k_equiv / num_experts);

  RoutingPlan plan;
  plan.num_experts = num_experts;
  plan.top_k = top_k_equiv;
  plan.tokens = tokens;
  plan.expert_tokens.resize(static_cast<size_t>(num_experts));
  plan.token_assignments.resize(static_cast<size_t>(tokens));

  const MatrixF logits = GemmRef(x, gate_weight.Transposed());  // tokens x experts
  // Each expert takes its `capacity` highest-affinity tokens.
  std::vector<int64_t> order(static_cast<size_t>(tokens));
  for (int e = 0; e < num_experts; ++e) {
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&logits, e](int64_t a, int64_t b) {
      return logits(a, e) > logits(b, e);
    });
    auto& chosen = plan.expert_tokens[static_cast<size_t>(e)];
    for (int64_t i = 0; i < capacity; ++i) {
      chosen.push_back(static_cast<int32_t>(order[static_cast<size_t>(i)]));
    }
    std::sort(chosen.begin(), chosen.end());
    for (int32_t tok : chosen) {
      plan.token_assignments[static_cast<size_t>(tok)].emplace_back(e, logits(tok, e));
    }
  }
  // Softmax-normalize each token's weights over the experts that chose it.
  for (auto& assignment : plan.token_assignments) {
    if (assignment.empty()) {
      continue;
    }
    float max_logit = assignment.front().second;
    for (const auto& [e, l] : assignment) {
      max_logit = std::max(max_logit, l);
    }
    float denom = 0.0f;
    for (auto& [e, l] : assignment) {
      l = std::exp(l - max_logit);
      denom += l;
    }
    for (auto& [e, l] : assignment) {
      l /= denom;
    }
  }
  // Normalized weights are only known now; build the per-expert vectors in a
  // second pass.
  plan.expert_gate.resize(static_cast<size_t>(num_experts));
  for (int e = 0; e < num_experts; ++e) {
    auto& gates = plan.expert_gate[static_cast<size_t>(e)];
    gates.reserve(plan.expert_tokens[static_cast<size_t>(e)].size());
    for (int32_t tok : plan.expert_tokens[static_cast<size_t>(e)]) {
      float weight = 0.0f;
      for (const auto& [expert, w] : plan.token_assignments[static_cast<size_t>(tok)]) {
        if (expert == e) {
          weight = w;
          break;
        }
      }
      gates.push_back(weight);
    }
  }
  return plan;
}

bool IsBalancedConsistent(const RoutingPlan& plan) {
  if (static_cast<int>(plan.expert_tokens.size()) != plan.num_experts) {
    return false;
  }
  const int64_t capacity =
      std::max<int64_t>(1, plan.tokens * plan.top_k / plan.num_experts);
  for (int e = 0; e < plan.num_experts; ++e) {
    if (plan.TokensForExpert(e) != capacity) {
      return false;  // expert choice guarantees exact balance
    }
    int32_t prev = -1;
    for (int32_t t : plan.expert_tokens[static_cast<size_t>(e)]) {
      if (t <= prev || t >= plan.tokens) {
        return false;
      }
      prev = t;
    }
  }
  for (const auto& assignment : plan.token_assignments) {
    if (assignment.empty()) {
      continue;  // dropped token: legal under expert choice
    }
    float weight_sum = 0.0f;
    for (const auto& [e, w] : assignment) {
      if (e < 0 || e >= plan.num_experts || w < 0.0f) {
        return false;
      }
      weight_sum += w;
    }
    if (std::fabs(weight_sum - 1.0f) > 1e-4f) {
      return false;
    }
  }
  return true;
}

RoutingPlan MakeSyntheticPlan(Rng& rng, int64_t tokens, int num_experts, int top_k,
                              double skew) {
  assert(top_k >= 1 && top_k <= num_experts);
  RoutingPlan plan;
  plan.num_experts = num_experts;
  plan.top_k = top_k;
  plan.tokens = tokens;
  plan.expert_tokens.resize(static_cast<size_t>(num_experts));
  plan.token_assignments.resize(static_cast<size_t>(tokens));
  plan.expert_gate.resize(static_cast<size_t>(num_experts));

  // Zipf-like popularity weights.
  std::vector<double> popularity(static_cast<size_t>(num_experts));
  double total = 0.0;
  for (int e = 0; e < num_experts; ++e) {
    popularity[static_cast<size_t>(e)] = 1.0 / std::pow(e + 1.0, skew);
    total += popularity[static_cast<size_t>(e)];
  }
  for (auto& p : popularity) {
    p /= total;
  }

  std::vector<int> picked;
  picked.reserve(static_cast<size_t>(top_k));
  for (int64_t t = 0; t < tokens; ++t) {
    picked.clear();
    while (static_cast<int>(picked.size()) < top_k) {
      double u = rng.NextDouble();
      int e = num_experts - 1;
      double acc = 0.0;
      for (int i = 0; i < num_experts; ++i) {
        acc += popularity[static_cast<size_t>(i)];
        if (u < acc) {
          e = i;
          break;
        }
      }
      if (std::find(picked.begin(), picked.end(), e) == picked.end()) {
        picked.push_back(e);
      }
    }
    auto& assignment = plan.token_assignments[static_cast<size_t>(t)];
    for (int e : picked) {
      assignment.emplace_back(e, 1.0f / static_cast<float>(top_k));
      plan.expert_tokens[static_cast<size_t>(e)].push_back(static_cast<int32_t>(t));
      plan.expert_gate[static_cast<size_t>(e)].push_back(1.0f / static_cast<float>(top_k));
    }
  }
  return plan;
}

}  // namespace samoyeds
