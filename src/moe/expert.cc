#include "src/moe/expert.h"

#include <cassert>
#include <cmath>

#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"

namespace samoyeds {

float ApplyActivation(Activation act, float x) {
  switch (act) {
    case Activation::kSilu:
      return x / (1.0f + std::exp(-x));
    case Activation::kGeluTanh: {
      const float c = 0.7978845608028654f;  // sqrt(2/pi)
      return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
    }
  }
  return x;
}

ExpertWeights ExpertWeights::Random(Rng& rng, int hidden, int intermediate, float scale) {
  ExpertWeights w;
  w.gate = rng.GaussianMatrix(intermediate, hidden, scale);
  w.up = rng.GaussianMatrix(intermediate, hidden, scale);
  w.down = rng.GaussianMatrix(hidden, intermediate, scale);
  RoundMatrixToBf16(w.gate);
  RoundMatrixToBf16(w.up);
  RoundMatrixToBf16(w.down);
  return w;
}

void ExpertWeights::ApplyMask(const SamoyedsConfig& cfg) {
  ApplySamoyedsMask(gate, cfg);
  ApplySamoyedsMask(up, cfg);
  ApplySamoyedsMask(down, cfg);
}

SamoyedsExpertWeights SamoyedsExpertWeights::Encode(const ExpertWeights& dense,
                                                    const SamoyedsConfig& cfg) {
  SamoyedsExpertWeights w;
  w.gate = SamoyedsMatrix::Encode(dense.gate, cfg);
  w.up = SamoyedsMatrix::Encode(dense.up, cfg);
  w.down = SamoyedsMatrix::Encode(dense.down, cfg);
  return w;
}

namespace {

// act(gate) ⊙ up, rounded to bf16 (inter-kernel storage format).
MatrixF GatedActivation(const MatrixF& gate_out, const MatrixF& up_out, Activation act) {
  assert(gate_out.rows() == up_out.rows() && gate_out.cols() == up_out.cols());
  MatrixF h(gate_out.rows(), gate_out.cols());
  for (int64_t r = 0; r < h.rows(); ++r) {
    for (int64_t c = 0; c < h.cols(); ++c) {
      h(r, c) = RoundToBf16(ApplyActivation(act, gate_out(r, c)) * up_out(r, c));
    }
  }
  return h;
}

MatrixF GatherRows(const MatrixF& x, const Selection& sel) {
  MatrixF out(sel.selected(), x.cols());
  for (int64_t i = 0; i < sel.selected(); ++i) {
    const int64_t r = sel.indices[static_cast<size_t>(i)];
    for (int64_t c = 0; c < x.cols(); ++c) {
      out(i, c) = x(r, c);
    }
  }
  return out;
}

}  // namespace

MatrixF ExpertForwardDense(const MatrixF& x, const ExpertWeights& w, const Selection& sel,
                           Activation act) {
  const MatrixF xs = GatherRows(x, sel);
  const MatrixF gate_out = GemmRef(xs, w.gate.Transposed());
  const MatrixF up_out = GemmRef(xs, w.up.Transposed());
  const MatrixF h = GatedActivation(gate_out, up_out, act);
  return GemmRef(h, w.down.Transposed());
}

MatrixF ExpertForwardSamoyeds(const MatrixF& x, const SamoyedsExpertWeights& w,
                              const Selection& sel, Activation act) {
  const MatrixF gate_out = SamoyedsKernel::RunLinear(x, w.gate, sel);
  const MatrixF up_out = SamoyedsKernel::RunLinear(x, w.up, sel);
  const MatrixF h = GatedActivation(gate_out, up_out, act);
  return SamoyedsKernel::RunLinear(h, w.down, Selection::All(h.rows()));
}

}  // namespace samoyeds
