#include "src/moe/expert.h"

#include <cassert>
#include <cmath>

#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"

namespace samoyeds {

float ApplyActivation(Activation act, float x) {
  switch (act) {
    case Activation::kSilu:
      return x / (1.0f + std::exp(-x));
    case Activation::kGeluTanh: {
      const float c = 0.7978845608028654f;  // sqrt(2/pi)
      return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
    }
  }
  return x;
}

ExpertWeights ExpertWeights::Random(Rng& rng, int hidden, int intermediate, float scale) {
  ExpertWeights w;
  w.gate = rng.GaussianMatrix(intermediate, hidden, scale);
  w.up = rng.GaussianMatrix(intermediate, hidden, scale);
  w.down = rng.GaussianMatrix(hidden, intermediate, scale);
  RoundMatrixToBf16(w.gate);
  RoundMatrixToBf16(w.up);
  RoundMatrixToBf16(w.down);
  return w;
}

void ExpertWeights::ApplyMask(const SamoyedsConfig& cfg) {
  ApplySamoyedsMask(gate, cfg);
  ApplySamoyedsMask(up, cfg);
  ApplySamoyedsMask(down, cfg);
}

SamoyedsExpertWeights SamoyedsExpertWeights::Encode(const ExpertWeights& dense,
                                                    const SamoyedsConfig& cfg) {
  SamoyedsExpertWeights w;
  w.gate = SamoyedsMatrix::Encode(dense.gate, cfg);
  w.up = SamoyedsMatrix::Encode(dense.up, cfg);
  w.down = SamoyedsMatrix::Encode(dense.down, cfg);
  SamoyedsKernel::PackWeights(w.gate, w.gate_packed);
  SamoyedsKernel::PackWeights(w.up, w.up_packed);
  SamoyedsKernel::PackWeights(w.down, w.down_packed);
  return w;
}

namespace {

// act(gate) ⊙ up, rounded to bf16 (inter-kernel storage format).
MatrixF GatedActivation(const MatrixF& gate_out, const MatrixF& up_out, Activation act) {
  assert(gate_out.rows() == up_out.rows() && gate_out.cols() == up_out.cols());
  MatrixF h(gate_out.rows(), gate_out.cols());
  for (int64_t r = 0; r < h.rows(); ++r) {
    for (int64_t c = 0; c < h.cols(); ++c) {
      h(r, c) = RoundToBf16(ApplyActivation(act, gate_out(r, c)) * up_out(r, c));
    }
  }
  return h;
}

// gate := bf16(act(gate) ⊙ up), element-wise in place — already in the
// layout the down projection consumes (no intermediate materialized).
void GatedActivationInPlace(MatrixF& gate, const MatrixF& up, Activation act) {
  assert(gate.rows() == up.rows() && gate.cols() == up.cols());
  float* g = gate.data();
  const float* u = up.data();
  const int64_t n = gate.size();
  for (int64_t i = 0; i < n; ++i) {
    g[i] = RoundToBf16(ApplyActivation(act, g[i]) * u[i]);
  }
}

MatrixF GatherRows(const MatrixF& x, const Selection& sel) {
  MatrixF out(sel.selected(), x.cols());
  for (int64_t i = 0; i < sel.selected(); ++i) {
    const int64_t r = sel.indices[static_cast<size_t>(i)];
    for (int64_t c = 0; c < x.cols(); ++c) {
      out(i, c) = x(r, c);
    }
  }
  return out;
}

}  // namespace

MatrixF ExpertForwardDense(const MatrixF& x, const ExpertWeights& w, const Selection& sel,
                           Activation act) {
  const MatrixF xs = GatherRows(x, sel);
  const MatrixF gate_out = GemmRef(xs, w.gate.Transposed());
  const MatrixF up_out = GemmRef(xs, w.up.Transposed());
  const MatrixF h = GatedActivation(gate_out, up_out, act);
  return GemmRef(h, w.down.Transposed());
}

void ExpertForwardSamoyeds(const MatrixF& x, const SamoyedsExpertWeights& w,
                           const Selection& sel, Activation act, SsmmWorkspace& ws,
                           MatrixF& out, int64_t out_row_begin) {
  const int64_t n_sel = sel.selected();
  const int64_t hidden = w.down.rows;
  assert(out.cols() == hidden);
  assert(out_row_begin >= 0 && out_row_begin + n_sel <= out.rows());
  if (n_sel == 0) {
    return;
  }

  // One fused gather + transpose + bf16 rounding of the selected token rows
  // feeds both projections (§4.5's staging done once per call). Encoded
  // experts carry prebuilt weight packs; per-call packing is the fallback
  // for hand-assembled weights.
  SamoyedsKernel::PackSelectedTokens(x, sel, ws.panel);
  if (!w.gate_packed.empty()) {
    SamoyedsKernel::RunPanel(w.gate, w.gate_packed, ws.panel, ws, ws.gate_t);  // inter x n_sel
    SamoyedsKernel::RunPanel(w.up, w.up_packed, ws.panel, ws, ws.up_t);        // inter x n_sel
    GatedActivationInPlace(ws.gate_t, ws.up_t, act);
    SamoyedsKernel::RunPanel(w.down, w.down_packed, ws.gate_t, ws, ws.out_t);  // hidden x n_sel
  } else {
    SamoyedsKernel::RunPanel(w.gate, ws.panel, ws, ws.gate_t);
    SamoyedsKernel::RunPanel(w.up, ws.panel, ws, ws.up_t);
    // gate_t becomes the bf16 intermediate, already feature-major — exactly
    // the panel layout the down projection consumes.
    GatedActivationInPlace(ws.gate_t, ws.up_t, act);
    SamoyedsKernel::RunPanel(w.down, ws.gate_t, ws, ws.out_t);
  }

  // Single transpose back to token-major output rows.
  const float* src = ws.out_t.data();
  for (int64_t j = 0; j < n_sel; ++j) {
    float* dst = out.data() + (out_row_begin + j) * hidden;
    for (int64_t c = 0; c < hidden; ++c) {
      dst[c] = src[c * n_sel + j];
    }
  }
}

MatrixF ExpertForwardSamoyeds(const MatrixF& x, const SamoyedsExpertWeights& w,
                              const Selection& sel, Activation act) {
  SsmmWorkspace ws;
  MatrixF out(sel.selected(), w.down.rows);
  ExpertForwardSamoyeds(x, w, sel, act, ws, out);
  return out;
}

}  // namespace samoyeds
