// Attention substrate for the decoder layer.
//
// The paper does not optimize attention; it runs Flash-Attention2 in every
// model-level experiment so that MoE-layer differences dominate (§6,
// "Baselines"). We provide (a) a functional multi-head attention for
// integration tests and (b) analytic profiles for both the naive
// (score-materializing) and Flash-Attention execution styles, used by the
// Fig. 2 time-breakdown experiment and the end-to-end benches.

#ifndef SAMOYEDS_SRC_MOE_ATTENTION_H_
#define SAMOYEDS_SRC_MOE_ATTENTION_H_

#include "src/kernels/kernel_report.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

struct AttentionWeights {
  MatrixF wq, wk, wv, wo;  // each hidden x hidden

  static AttentionWeights Random(Rng& rng, int hidden, float scale = 0.15f);
};

// Functional causal multi-head self-attention; hidden % heads == 0.
MatrixF AttentionForward(const MatrixF& x, const AttentionWeights& w, int heads);

// Analytic profile of one attention block over a batch of `batch` sequences
// of `seq` tokens each (attention scores are quadratic in seq, linear in
// batch). flash = true fuses the softmax(QK^T)V pipeline (no score
// materialization). heads <= 0 selects hidden/128.
KernelProfile AttentionProfile(int64_t seq, int64_t batch, int hidden, int heads, bool flash);

// Elementwise profile for the two RMSNorm/LayerNorm + residual passes of a
// decoder layer.
KernelProfile NormResidualProfile(int64_t tokens, int hidden);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_ATTENTION_H_
