// Functional MoE layer (§2.1, Fig. 5): routing, expert dispatch, weighted
// un-permutation, optional shared experts. Two execution paths:
//
//   * MoeForwardReference — the Transformers-style data flow with explicit
//     permutation (gather) and weighted scatter-accumulate over dense
//     experts; the correctness oracle.
//   * MoeForwardSamoyeds — experts in the Samoyeds format executed through
//     the dual-side SSMM kernel with SEL arrays taken directly from the
//     routing plan (no permutation copies).
//
// Both paths produce a (tokens x hidden) output; with identical (masked)
// weights they agree to bf16 accumulation tolerance.

#ifndef SAMOYEDS_SRC_MOE_MOE_LAYER_H_
#define SAMOYEDS_SRC_MOE_MOE_LAYER_H_

#include <vector>

#include "src/moe/expert.h"
#include "src/moe/model_configs.h"
#include "src/moe/router.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

struct MoeLayerWeights {
  MatrixF router_gate;  // num_experts x hidden
  std::vector<ExpertWeights> experts;
  std::vector<ExpertWeights> shared_experts;

  static MoeLayerWeights Random(Rng& rng, const MoeModelConfig& config);
  // Applies the Samoyeds mask to all routed and shared experts (router stays
  // dense; it is negligible and kept at full precision in the paper too).
  void ApplyMask(const SamoyedsConfig& cfg);
};

struct SamoyedsMoeLayerWeights {
  MatrixF router_gate;
  std::vector<SamoyedsExpertWeights> experts;
  std::vector<SamoyedsExpertWeights> shared_experts;

  static SamoyedsMoeLayerWeights Encode(const MoeLayerWeights& dense, const SamoyedsConfig& cfg);
};

// Scatter-accumulate one expert's output rows into the layer output with
// per-token gate weights (the weighted un-permutation phase of Fig. 5).
// Exposed so alternative executors (e.g. the serving engine's multi-threaded
// expert pool) can reuse the exact reference accumulation.
void MoeScatterAdd(const MatrixF& expert_out, const Selection& sel, const RoutingPlan& plan,
                   int expert_id, MatrixF& out);

// Reference data flow over dense experts, using the supplied routing plan.
MatrixF MoeForwardReference(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                            Activation act);

// Dual-side sparse execution through the Samoyeds kernel.
MatrixF MoeForwardSamoyeds(const MatrixF& x, const SamoyedsMoeLayerWeights& w,
                           const RoutingPlan& plan, Activation act);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_MOE_LAYER_H_
