// Functional MoE layer (§2.1, Fig. 5): routing, expert dispatch, weighted
// un-permutation, optional shared experts. Two execution paths:
//
//   * MoeForwardReference — the Transformers-style data flow with explicit
//     permutation (gather) and weighted scatter-accumulate over dense
//     experts; the correctness oracle.
//   * MoeForwardSamoyeds — experts in the Samoyeds format executed through
//     the dual-side SSMM kernel with SEL arrays taken directly from the
//     routing plan (no permutation copies). A MoeWorkspace overload keeps
//     steady-state serving free of per-call heap allocation.
//
// Both paths produce a (tokens x hidden) output; with identical (masked)
// weights they agree to bf16 accumulation tolerance.

#ifndef SAMOYEDS_SRC_MOE_MOE_LAYER_H_
#define SAMOYEDS_SRC_MOE_MOE_LAYER_H_

#include <cassert>
#include <vector>

#include "src/core/ssmm_workspace.h"
#include "src/moe/expert.h"
#include "src/moe/model_configs.h"
#include "src/moe/router.h"
#include "src/tensor/matrix.h"
#include "src/tensor/rng.h"

namespace samoyeds {

struct MoeLayerWeights {
  MatrixF router_gate;  // num_experts x hidden
  std::vector<ExpertWeights> experts;
  std::vector<ExpertWeights> shared_experts;

  static MoeLayerWeights Random(Rng& rng, const MoeModelConfig& config);
  // Applies the Samoyeds mask to all routed and shared experts (router stays
  // dense; it is negligible and kept at full precision in the paper too).
  void ApplyMask(const SamoyedsConfig& cfg);
};

struct SamoyedsMoeLayerWeights {
  MatrixF router_gate;
  std::vector<SamoyedsExpertWeights> experts;
  std::vector<SamoyedsExpertWeights> shared_experts;

  static SamoyedsMoeLayerWeights Encode(const MoeLayerWeights& dense, const SamoyedsConfig& cfg);
};

// y[i] += alpha * x[i] over n contiguous elements — the one accumulation
// primitive every un-permutation path shares (weighted scatter rows, shared
// expert folds, residual adds).
inline void Axpy(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

// y += alpha * x over whole same-shaped matrices.
inline void MatrixAxpy(float alpha, const MatrixF& x, MatrixF& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  Axpy(alpha, x.data(), y.data(), x.size());
}

// Scatter-accumulate one expert's output rows into the layer output with
// per-token gate weights (the weighted un-permutation phase of Fig. 5),
// addressed directly through plan.expert_tokens[expert_id] — no Selection
// materialization. With a routing plan carrying precomputed expert_gate
// vectors each row is one straight axpy. Exposed so alternative executors
// (the serving engine's tile-granular expert pool) reuse the exact
// reference accumulation.
void MoeScatterAdd(const MatrixF& expert_out, const RoutingPlan& plan, int expert_id,
                   MatrixF& out);

// Reference data flow over dense experts, using the supplied routing plan.
MatrixF MoeForwardReference(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                            Activation act);

// Dual-side sparse execution through the Samoyeds kernel.
MatrixF MoeForwardSamoyeds(const MatrixF& x, const SamoyedsMoeLayerWeights& w,
                           const RoutingPlan& plan, Activation act);

// Zero-allocation variant: all scratch lives in `ws`, the result is written
// into `out` (reshaped to tokens x hidden). Bit-identical to the allocating
// overload.
void MoeForwardSamoyeds(const MatrixF& x, const SamoyedsMoeLayerWeights& w,
                        const RoutingPlan& plan, Activation act, MoeWorkspace& ws,
                        MatrixF& out);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_MOE_LAYER_H_
