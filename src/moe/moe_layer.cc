#include "src/moe/moe_layer.h"

#include <cassert>
#include <numeric>

namespace samoyeds {

MoeLayerWeights MoeLayerWeights::Random(Rng& rng, const MoeModelConfig& config) {
  MoeLayerWeights w;
  w.router_gate = rng.GaussianMatrix(config.num_experts, config.hidden, 0.3f);
  w.experts.reserve(static_cast<size_t>(config.num_experts));
  for (int e = 0; e < config.num_experts; ++e) {
    w.experts.push_back(ExpertWeights::Random(rng, config.hidden, config.intermediate));
  }
  for (int s = 0; s < config.shared_experts; ++s) {
    w.shared_experts.push_back(ExpertWeights::Random(rng, config.hidden, config.intermediate));
  }
  return w;
}

void MoeLayerWeights::ApplyMask(const SamoyedsConfig& cfg) {
  for (auto& e : experts) {
    e.ApplyMask(cfg);
  }
  for (auto& e : shared_experts) {
    e.ApplyMask(cfg);
  }
}

SamoyedsMoeLayerWeights SamoyedsMoeLayerWeights::Encode(const MoeLayerWeights& dense,
                                                        const SamoyedsConfig& cfg) {
  SamoyedsMoeLayerWeights w;
  w.router_gate = dense.router_gate;
  for (const auto& e : dense.experts) {
    w.experts.push_back(SamoyedsExpertWeights::Encode(e, cfg));
  }
  for (const auto& e : dense.shared_experts) {
    w.shared_experts.push_back(SamoyedsExpertWeights::Encode(e, cfg));
  }
  return w;
}

void MoeScatterAdd(const MatrixF& expert_out, const RoutingPlan& plan, int expert_id,
                   MatrixF& out) {
  const auto& tokens = plan.expert_tokens[static_cast<size_t>(expert_id)];
  assert(expert_out.rows() >= static_cast<int64_t>(tokens.size()));
  const int64_t cols = out.cols();
  for (size_t i = 0; i < tokens.size(); ++i) {
    Axpy(plan.GateWeight(expert_id, static_cast<int64_t>(i)),
         expert_out.data() + static_cast<int64_t>(i) * cols,
         out.data() + static_cast<int64_t>(tokens[i]) * cols, cols);
  }
}

MatrixF MoeForwardReference(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                            Activation act) {
  assert(plan.tokens == x.rows());
  MatrixF out(x.rows(), x.cols());
  for (int e = 0; e < plan.num_experts; ++e) {
    const Selection sel = plan.SelectionForExpert(e);
    if (sel.selected() == 0) {
      continue;
    }
    const MatrixF expert_out = ExpertForwardDense(x, w.experts[static_cast<size_t>(e)], sel, act);
    MoeScatterAdd(expert_out, plan, e, out);
  }
  // Shared experts process every token with unit weight.
  const Selection all = Selection::All(x.rows());
  for (const auto& shared : w.shared_experts) {
    const MatrixF shared_out = ExpertForwardDense(x, shared, all, act);
    MatrixAxpy(1.0f, shared_out, out);
  }
  return out;
}

void MoeForwardSamoyeds(const MatrixF& x, const SamoyedsMoeLayerWeights& w,
                        const RoutingPlan& plan, Activation act, MoeWorkspace& ws,
                        MatrixF& out) {
  assert(plan.tokens == x.rows());
  out.Reshape(x.rows(), x.cols());
  out.Fill(0.0f);
  ws.sel.full_size = x.rows();
  for (int e = 0; e < plan.num_experts; ++e) {
    const auto& tokens = plan.expert_tokens[static_cast<size_t>(e)];
    if (tokens.empty()) {
      continue;
    }
    ws.sel.indices.assign(tokens.begin(), tokens.end());
    ws.expert_out.Reshape(static_cast<int64_t>(tokens.size()), x.cols());
    ExpertForwardSamoyeds(x, w.experts[static_cast<size_t>(e)], ws.sel, act, ws.ssmm,
                          ws.expert_out);
    MoeScatterAdd(ws.expert_out, plan, e, out);
  }
  if (!w.shared_experts.empty()) {
    ws.sel.indices.resize(static_cast<size_t>(x.rows()));
    std::iota(ws.sel.indices.begin(), ws.sel.indices.end(), 0);
    ws.expert_out.Reshape(x.rows(), x.cols());
    for (const auto& shared : w.shared_experts) {
      ExpertForwardSamoyeds(x, shared, ws.sel, act, ws.ssmm, ws.expert_out);
      MatrixAxpy(1.0f, ws.expert_out, out);
    }
  }
}

MatrixF MoeForwardSamoyeds(const MatrixF& x, const SamoyedsMoeLayerWeights& w,
                           const RoutingPlan& plan, Activation act) {
  MoeWorkspace ws;
  MatrixF out;
  MoeForwardSamoyeds(x, w, plan, act, ws, out);
  return out;
}

}  // namespace samoyeds
