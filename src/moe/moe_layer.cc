#include "src/moe/moe_layer.h"

#include <cassert>

namespace samoyeds {

MoeLayerWeights MoeLayerWeights::Random(Rng& rng, const MoeModelConfig& config) {
  MoeLayerWeights w;
  w.router_gate = rng.GaussianMatrix(config.num_experts, config.hidden, 0.3f);
  w.experts.reserve(static_cast<size_t>(config.num_experts));
  for (int e = 0; e < config.num_experts; ++e) {
    w.experts.push_back(ExpertWeights::Random(rng, config.hidden, config.intermediate));
  }
  for (int s = 0; s < config.shared_experts; ++s) {
    w.shared_experts.push_back(ExpertWeights::Random(rng, config.hidden, config.intermediate));
  }
  return w;
}

void MoeLayerWeights::ApplyMask(const SamoyedsConfig& cfg) {
  for (auto& e : experts) {
    e.ApplyMask(cfg);
  }
  for (auto& e : shared_experts) {
    e.ApplyMask(cfg);
  }
}

SamoyedsMoeLayerWeights SamoyedsMoeLayerWeights::Encode(const MoeLayerWeights& dense,
                                                        const SamoyedsConfig& cfg) {
  SamoyedsMoeLayerWeights w;
  w.router_gate = dense.router_gate;
  for (const auto& e : dense.experts) {
    w.experts.push_back(SamoyedsExpertWeights::Encode(e, cfg));
  }
  for (const auto& e : dense.shared_experts) {
    w.shared_experts.push_back(SamoyedsExpertWeights::Encode(e, cfg));
  }
  return w;
}

void MoeScatterAdd(const MatrixF& expert_out, const Selection& sel, const RoutingPlan& plan,
                   int expert_id, MatrixF& out) {
  for (int64_t i = 0; i < sel.selected(); ++i) {
    const int64_t token = sel.indices[static_cast<size_t>(i)];
    float weight = 0.0f;
    for (const auto& [e, gw] : plan.token_assignments[static_cast<size_t>(token)]) {
      if (e == expert_id) {
        weight = gw;
        break;
      }
    }
    for (int64_t c = 0; c < out.cols(); ++c) {
      out(token, c) += weight * expert_out(i, c);
    }
  }
}

MatrixF MoeForwardReference(const MatrixF& x, const MoeLayerWeights& w, const RoutingPlan& plan,
                            Activation act) {
  assert(plan.tokens == x.rows());
  MatrixF out(x.rows(), x.cols());
  for (int e = 0; e < plan.num_experts; ++e) {
    const Selection sel = plan.SelectionForExpert(e);
    if (sel.selected() == 0) {
      continue;
    }
    const MatrixF expert_out = ExpertForwardDense(x, w.experts[static_cast<size_t>(e)], sel, act);
    MoeScatterAdd(expert_out, sel, plan, e, out);
  }
  // Shared experts process every token with unit weight.
  const Selection all = Selection::All(x.rows());
  for (const auto& shared : w.shared_experts) {
    const MatrixF shared_out = ExpertForwardDense(x, shared, all, act);
    for (int64_t r = 0; r < out.rows(); ++r) {
      for (int64_t c = 0; c < out.cols(); ++c) {
        out(r, c) += shared_out(r, c);
      }
    }
  }
  return out;
}

MatrixF MoeForwardSamoyeds(const MatrixF& x, const SamoyedsMoeLayerWeights& w,
                           const RoutingPlan& plan, Activation act) {
  assert(plan.tokens == x.rows());
  MatrixF out(x.rows(), x.cols());
  for (int e = 0; e < plan.num_experts; ++e) {
    const Selection sel = plan.SelectionForExpert(e);
    if (sel.selected() == 0) {
      continue;
    }
    const MatrixF expert_out =
        ExpertForwardSamoyeds(x, w.experts[static_cast<size_t>(e)], sel, act);
    MoeScatterAdd(expert_out, sel, plan, e, out);
  }
  const Selection all = Selection::All(x.rows());
  for (const auto& shared : w.shared_experts) {
    const MatrixF shared_out = ExpertForwardSamoyeds(x, shared, all, act);
    for (int64_t r = 0; r < out.rows(); ++r) {
      for (int64_t c = 0; c < out.cols(); ++c) {
        out(r, c) += shared_out(r, c);
      }
    }
  }
  return out;
}

}  // namespace samoyeds
