#include "src/moe/model_configs.h"

#include <cstdlib>
#include <iostream>

namespace samoyeds {

std::vector<MoeModelConfig> PaperModels() {
  std::vector<MoeModelConfig> models;

  MoeModelConfig qwen2;
  qwen2.name = "Qwen2-MoE";
  qwen2.cfg_group = "CFG#1";
  qwen2.num_experts = 60;
  qwen2.hidden = 1408;
  qwen2.intermediate = 2048;
  qwen2.top_k = 4;
  qwen2.default_seq = 4096;
  qwen2.default_batch = 16;  // §6.3.1: larger batch for many-expert models
  models.push_back(qwen2);

  MoeModelConfig deepseek;
  deepseek.name = "DeepSeek-MoE";
  deepseek.cfg_group = "CFG#1";
  deepseek.num_experts = 64;
  deepseek.hidden = 1408;
  deepseek.intermediate = 2048;
  deepseek.top_k = 6;
  deepseek.default_seq = 4096;
  deepseek.default_batch = 16;
  models.push_back(deepseek);

  MoeModelConfig minicpm;
  minicpm.name = "MiniCPM-MoE";
  minicpm.cfg_group = "CFG#2";
  minicpm.num_experts = 8;
  minicpm.hidden = 2304;
  minicpm.intermediate = 5760;
  minicpm.top_k = 2;
  models.push_back(minicpm);

  MoeModelConfig openmoe;
  openmoe.name = "OpenMoE-34B";
  openmoe.cfg_group = "CFG#3";
  openmoe.num_experts = 32;
  openmoe.hidden = 3072;
  openmoe.intermediate = 12288;
  openmoe.top_k = 2;
  openmoe.activation = Activation::kGeluTanh;
  openmoe.default_seq = 2048;  // §6.3.1: max sequence length constraint
  openmoe.hf_dense_expert_fallback = true;
  models.push_back(openmoe);

  MoeModelConfig mixtral;
  mixtral.name = "Mixtral-8x7B";
  mixtral.cfg_group = "CFG#4";
  mixtral.num_experts = 8;
  mixtral.hidden = 4096;
  mixtral.intermediate = 14336;
  mixtral.top_k = 2;
  models.push_back(mixtral);

  MoeModelConfig mixtral22;
  mixtral22.name = "Mixtral-8x22B";
  mixtral22.cfg_group = "CFG#5";
  mixtral22.num_experts = 8;
  mixtral22.hidden = 6144;
  mixtral22.intermediate = 16384;
  mixtral22.top_k = 2;
  models.push_back(mixtral22);

  return models;
}

const MoeModelConfig& ModelByName(const std::string& name) {
  static const std::vector<MoeModelConfig> models = PaperModels();
  for (const auto& m : models) {
    if (m.name == name) {
      return m;
    }
  }
  std::cerr << "unknown model: " << name << "\n";
  std::abort();
}

}  // namespace samoyeds
