// MoE model configurations evaluated in the paper (Table 2), plus the
// per-model experiment defaults used in §6.2-6.3.

#ifndef SAMOYEDS_SRC_MOE_MODEL_CONFIGS_H_
#define SAMOYEDS_SRC_MOE_MODEL_CONFIGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace samoyeds {

enum class Activation {
  kSilu,       // SwiGLU-style gate (Mixtral, DeepSeek, Qwen2, MiniCPM)
  kGeluTanh,   // OpenMoE's activation, unsupported by MegaBlocks/vLLM kernels
};

struct MoeModelConfig {
  std::string name;
  std::string cfg_group;  // CFG#1..CFG#5 of Table 2
  int num_experts = 8;
  int hidden = 4096;
  int intermediate = 14336;
  int top_k = 2;
  // Isolated shared experts processed by every token (§6.2's second routing
  // type); 0 for the "without shared experts" variants.
  int shared_experts = 0;
  Activation activation = Activation::kSilu;
  // End-to-end defaults from §6.3.1.
  int default_seq = 4096;
  int default_batch = 1;
  // Whether the HF-Transformers implementation of this model computes all
  // experts densely over all tokens (OpenMoE's "unique computation
  // process", see Table 3's 18.67x outlier).
  bool hf_dense_expert_fallback = false;

  int64_t expert_params() const {
    return 3ll * hidden * intermediate;  // gate_proj + up_proj + down_proj
  }
};

// The six models of Table 2, in paper order.
std::vector<MoeModelConfig> PaperModels();

// Lookup by name; aborts on unknown names (programming error).
const MoeModelConfig& ModelByName(const std::string& name);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_MOE_MODEL_CONFIGS_H_
