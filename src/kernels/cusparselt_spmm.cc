#include "src/kernels/cusparselt_spmm.h"

#include <cassert>

#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"

namespace samoyeds {

KernelProfile CusparseltSpmmKernel::Analyze(const GemmShape& shape) {
  KernelProfile p;
  p.kernel_name = "cuSPARSELt-like 2:4";
  p.useful_flops = 2.0 * shape.m * shape.k * shape.n;

  const int64_t mp = RoundUp(shape.m, kTileM);
  const int64_t np = RoundUp(shape.n, kTileN);
  const int64_t kp = RoundUp(shape.k, kTileK);
  const int64_t blocks = (mp / kTileM) * (np / kTileN);

  TrafficReport& t = p.traffic;
  t.thread_blocks = blocks;
  t.warps_per_block = 8;
  t.pipeline_stages = kStages;
  t.smem_bytes_per_block =
      static_cast<int64_t>(kStages) * (kTileM * kTileK / 2 + kTileK * kTileN) * 2;
  t.regs_per_thread = 168;
  t.efficiency = kEfficiency;

  // A is streamed compressed (k/2 values) plus 2-bit metadata; B in full.
  const double a_bytes = static_cast<double>(kTileM) * (kp / 2) * 2.0;
  const double meta_bytes = static_cast<double>(kTileM) * (kp / 2) * 0.25;
  const double b_bytes = static_cast<double>(kp) * kTileN * 2.0;
  t.gmem_read_bytes = static_cast<double>(blocks) * (a_bytes + meta_bytes + b_bytes);
  t.gmem_write_bytes = static_cast<double>(mp) * np * 2.0;
  t.gmem_unique_bytes = static_cast<double>(shape.m) * shape.k * (1.0 + 0.125) +  // bf16/2 + meta
                        static_cast<double>(shape.k) * shape.n * 2.0 +
                        static_cast<double>(shape.m) * shape.n * 2.0;
  t.smem_bytes = t.gmem_read_bytes * 3.0;
  t.bank_conflict_factor = 1.0;

  // SpTC executes only the kept half of the MACs.
  t.mma_flops = 2.0 * mp * (kp / 2) * np;
  t.uses_sparse_alu = true;
  t.simd_flops = static_cast<double>(mp) * np * 2.0;
  t.fixed_overhead_us = 6.0;  // includes the library's descriptor handling
  return p;
}

MatrixF CusparseltSpmmKernel::Run(const TwoFourMatrix& a24, const MatrixF& b) {
  assert(a24.cols == b.rows());
  MatrixF a = a24.ToDense();
  MatrixF bb = b;
  RoundMatrixToBf16(a);
  RoundMatrixToBf16(bb);
  return GemmRef(a, bb);
}

}  // namespace samoyeds
