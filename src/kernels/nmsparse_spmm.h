// nmSPARSE-like N:M structured SpMM on CUDA cores (Lin et al., MLSys'23;
// §3.3). Exploits the regular N:M pattern for aligned, bank-conflict-free
// loads — far better than unstructured CSR — but, like BBS, it cannot use
// the Sparse Tensor Cores, which is exactly the gap the paper positions
// Samoyeds against.

#ifndef SAMOYEDS_SRC_KERNELS_NMSPARSE_SPMM_H_
#define SAMOYEDS_SRC_KERNELS_NMSPARSE_SPMM_H_

#include "src/formats/nm_generic.h"
#include "src/kernels/kernel_report.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

class NmSparseSpmmKernel {
 public:
  static KernelProfile Analyze(const GemmShape& shape, const NmConfig& config);

  static MatrixF Run(const NmMatrix& a, const MatrixF& b);

  static constexpr int kTileM = 64;
  static constexpr int kTileN = 64;
  static constexpr int kTileK = 32;
  static constexpr double kEfficiency = 0.60;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_KERNELS_NMSPARSE_SPMM_H_
