// cuSPARSELt-like 2:4 sparse-dense SpMM baseline (§3.3).
//
// Uses the SpTC with the fixed 50% sparse ratio: executed tensor-core work
// is half of the dense equivalent, A's data traffic is halved and 2-bit
// metadata is added, but the dense-side B panel must still be streamed in
// full. The library is a per-device-tuned vendor black box (no portability
// penalty) whose sparse kernels are, at LLM shapes, noticeably further from
// the roofline than cuBLAS's dense ones — the paper (Fig. 12) and VENOM
// both measure cuSPARSELt slightly *slower* than cuBLAS on such shapes, and
// the efficiency constant below is calibrated to that observation.

#ifndef SAMOYEDS_SRC_KERNELS_CUSPARSELT_SPMM_H_
#define SAMOYEDS_SRC_KERNELS_CUSPARSELT_SPMM_H_

#include "src/formats/nm24.h"
#include "src/kernels/kernel_report.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

class CusparseltSpmmKernel {
 public:
  static KernelProfile Analyze(const GemmShape& shape);

  // C = A24 * B with bf16 rounding; A24 holds the 2:4-compressed weights.
  static MatrixF Run(const TwoFourMatrix& a24, const MatrixF& b);

  static constexpr int kTileM = 128;
  static constexpr int kTileN = 128;
  static constexpr int kTileK = 64;
  static constexpr int kStages = 3;
  static constexpr double kEfficiency = 0.42;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_KERNELS_CUSPARSELT_SPMM_H_
