// Sputnik-like unstructured CSR SpMM baseline (Gale et al., SC'20).
//
// A well-engineered CUDA-core kernel for unstructured deep-learning
// sparsity: fp32 values, 1-D tiled row decomposition, vectorized loads.
// It cannot use tensor cores, and its gathers of B rows follow the
// irregular column pattern — both properties the paper identifies as the
// reason unstructured kernels lose at LLM sparsity ratios (§3.2).

#ifndef SAMOYEDS_SRC_KERNELS_SPUTNIK_SPMM_H_
#define SAMOYEDS_SRC_KERNELS_SPUTNIK_SPMM_H_

#include "src/formats/csr.h"
#include "src/kernels/kernel_report.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

class SputnikSpmmKernel {
 public:
  // `density` is the fraction of non-zeros in A (e.g. 0.25 at 75% sparsity).
  static KernelProfile Analyze(const GemmShape& shape, double density);

  static MatrixF Run(const CsrMatrix& a, const MatrixF& b);

  static constexpr int kTileN = 64;
  static constexpr int kRowsPerBlock = 4;
  static constexpr double kEfficiency = 0.55;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_KERNELS_SPUTNIK_SPMM_H_
