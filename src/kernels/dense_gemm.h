// cuBLAS-like dense GEMM baseline.
//
// Models a highly tuned vendor dense kernel: 128x128 thread-block tiles,
// multi-stage cp.async pipeline, near-roofline efficiency, re-tuned per
// device (no portability penalty).

#ifndef SAMOYEDS_SRC_KERNELS_DENSE_GEMM_H_
#define SAMOYEDS_SRC_KERNELS_DENSE_GEMM_H_

#include "src/kernels/kernel_report.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

class DenseGemmKernel {
 public:
  // Traffic/arithmetic profile of C(m x n) = A(m x k) * B(k x n) in bf16.
  static KernelProfile Analyze(const GemmShape& shape);

  // Functional execution with bf16 operand rounding (fp32 accumulate).
  static MatrixF Run(const MatrixF& a, const MatrixF& b);

  static constexpr int kTileM = 128;
  static constexpr int kTileN = 128;
  static constexpr int kTileK = 32;
  static constexpr int kStages = 3;
  static constexpr double kEfficiency = 0.92;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_KERNELS_DENSE_GEMM_H_
