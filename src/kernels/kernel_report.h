// Common result types for kernel performance profiles.

#ifndef SAMOYEDS_SRC_KERNELS_KERNEL_REPORT_H_
#define SAMOYEDS_SRC_KERNELS_KERNEL_REPORT_H_

#include <cstdint>
#include <string>

#include "src/simgpu/traffic.h"

namespace samoyeds {

struct GemmShape {
  int64_t m = 0;  // weight rows (output features)
  int64_t k = 0;  // reduction dimension
  int64_t n = 0;  // activation columns (tokens)
};

// What a kernel would do for a given problem: the traffic it generates plus
// the dense-equivalent work it accomplishes. `useful_flops` is the
// numerator of the throughput numbers in Fig. 12/13 — sparse kernels do
// less raw arithmetic for the same useful work, which is exactly how they
// can exceed the dense peak.
struct KernelProfile {
  std::string kernel_name;
  TrafficReport traffic;
  double useful_flops = 0.0;
};

inline int64_t RoundUp(int64_t value, int64_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_KERNELS_KERNEL_REPORT_H_
