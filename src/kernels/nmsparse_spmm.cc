#include "src/kernels/nmsparse_spmm.h"

#include <cassert>

#include "src/tensor/gemm_ref.h"

namespace samoyeds {

KernelProfile NmSparseSpmmKernel::Analyze(const GemmShape& shape, const NmConfig& config) {
  KernelProfile p;
  p.kernel_name = "nmSPARSE-like N:M";
  p.useful_flops = 2.0 * shape.m * shape.k * shape.n;

  const double density = config.density();
  const int64_t mp = RoundUp(shape.m, kTileM);
  const int64_t np = RoundUp(shape.n, kTileN);
  const int64_t kp = RoundUp(shape.k, kTileK);
  const int64_t blocks = (mp / kTileM) * (np / kTileN);

  TrafficReport& t = p.traffic;
  t.thread_blocks = blocks;
  t.warps_per_block = 8;
  t.pipeline_stages = 2;
  t.smem_bytes_per_block = 48 << 10;
  t.regs_per_thread = 128;
  t.efficiency = kEfficiency;

  // A values (fp16, kept only) + byte offsets, streamed per block column;
  // B panels in full (the structured pattern keeps the loads aligned, so no
  // uncoalesced amplification — the contrast with Sputnik).
  const double a_bytes = static_cast<double>(mp) * (np / kTileN) * kp * density * 3.0;
  const double b_bytes = static_cast<double>(blocks) * kp * kTileN * 2.0;
  t.gmem_read_bytes = a_bytes + b_bytes;
  t.gmem_write_bytes = static_cast<double>(mp) * np * 2.0;
  t.gmem_unique_bytes = static_cast<double>(shape.m) * shape.k * density * 3.0 +
                        static_cast<double>(shape.k) * shape.n * 2.0 +
                        static_cast<double>(shape.m) * shape.n * 2.0;
  t.smem_bytes = t.gmem_read_bytes * 2.0;
  t.bank_conflict_factor = 1.0;  // the format is designed for conflict-free access

  // All arithmetic on CUDA cores: FMA per kept element, plus offset decode.
  t.mma_flops = 0.0;
  t.simd_flops = 2.0 * mp * kp * density * np + mp * kp * density * 2.0;
  t.fixed_overhead_us = 5.0;
  return p;
}

MatrixF NmSparseSpmmKernel::Run(const NmMatrix& a, const MatrixF& b) {
  assert(a.cols == b.rows());
  return GemmRef(a.ToDense(), b);
}

}  // namespace samoyeds
