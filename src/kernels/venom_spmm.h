// VENOM-like V:N:M sparse-dense SpMM baseline (Castro et al., SC'23).
//
// Uses the SpTC with a flexible sparse ratio via the V:N:M format, but is
// optimized for sparse-*dense* multiplication: there is no input-side
// selection, the metadata layout is the element-wise row-major one (extra
// decode traffic), and the hand-tuned pipeline is calibrated for the
// kernel's native GPU — ported builds pay the imbalance penalty of
// src/kernels/tuning.h (Fig. 18's 95% speedup loss on A100).
//
// Mechanistic handicaps relative to the Samoyeds kernel, following §3.3 and
// §6.1: B-row skipping across V-stripes fragments the dense-side loads
// (partial uncoalescing, Fig. 6 cases 2-4 when inputs are also sparse), a
// shallower software pipeline, and unpacked metadata loads. The efficiency
// constant is calibrated so that VENOM lands at its published ~1.38x over
// cuSPARSELt on the native device.

#ifndef SAMOYEDS_SRC_KERNELS_VENOM_SPMM_H_
#define SAMOYEDS_SRC_KERNELS_VENOM_SPMM_H_

#include "src/formats/venom.h"
#include "src/kernels/kernel_report.h"
#include "src/simgpu/device_spec.h"
#include "src/tensor/matrix.h"

namespace samoyeds {

class VenomSpmmKernel {
 public:
  // `config` determines the sparse ratio. `target` is the device the kernel
  // runs on; efficiency degrades away from the native RTX 4070 Super.
  static KernelProfile Analyze(const GemmShape& shape, const VenomConfig& config,
                               const DeviceSpec& target);
  static KernelProfile Analyze(const GemmShape& shape, const VenomConfig& config);

  static MatrixF Run(const VenomMatrix& a, const MatrixF& b);

  static constexpr int kTileM = 128;
  static constexpr int kTileN = 64;
  static constexpr int kTileK = 32;
  static constexpr int kStages = 2;
  static constexpr double kEfficiency = 0.50;
  static constexpr double kPortSensitivity = 4.0;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_KERNELS_VENOM_SPMM_H_
