#include "src/kernels/venom_spmm.h"

#include <cassert>

#include "src/kernels/tuning.h"
#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"

namespace samoyeds {

KernelProfile VenomSpmmKernel::Analyze(const GemmShape& shape, const VenomConfig& config,
                                       const DeviceSpec& target) {
  KernelProfile p;
  p.kernel_name = "VENOM-like V:N:M";
  p.useful_flops = 2.0 * shape.m * shape.k * shape.n;

  const double density = config.density();
  const int64_t mp = RoundUp(shape.m, kTileM);
  const int64_t np = RoundUp(shape.n, kTileN);
  const int64_t kp = RoundUp(shape.k, kTileK);
  const int64_t blocks = (mp / kTileM) * (np / kTileN);

  TrafficReport& t = p.traffic;
  t.thread_blocks = blocks;
  t.warps_per_block = 8;
  t.pipeline_stages = kStages;
  t.smem_bytes_per_block =
      static_cast<int64_t>(kStages) * (kTileM * kTileK + kTileK * kTileN) * 2;
  t.regs_per_thread = 192;
  t.efficiency = kEfficiency * PortabilityFactor(DefaultDevice(), target, kPortSensitivity);

  // A data: kept values only. Metadata: element-wise 2-bit entries in
  // row-major order — loads are 32-bit-per-thread scattered (no Fig. 10
  // packing), modeled as uncoalesced with per-entry word granularity.
  const double a_bytes = static_cast<double>(mp) * np / kTileN * kp * density * 2.0;
  const double meta_bytes = static_cast<double>(mp) * np / kTileN * kp * density * 0.25 * 2.0;
  // B rows for kept columns only, but the kept set changes every V-stripe
  // inside the same block tile, fragmenting the loads; the union of rows a
  // block touches approaches min(1, density * 2 * stripes) of k.
  const int stripes_per_tile = kTileM / config.v > 0 ? kTileM / config.v : 1;
  const double b_coverage = std::min(1.0, 2.0 * density * stripes_per_tile);
  const double b_bytes = static_cast<double>(blocks) * kp * b_coverage * kTileN * 2.0;
  t.gmem_read_bytes = a_bytes + meta_bytes + b_bytes;
  t.gmem_uncoalesced_bytes = 0.5 * meta_bytes + 0.3 * b_bytes;
  t.gmem_write_bytes = static_cast<double>(mp) * np * 2.0;
  t.gmem_unique_bytes = static_cast<double>(shape.m) * shape.k * density * 2.25 +
                        static_cast<double>(shape.k) * shape.n * 2.0 +
                        static_cast<double>(shape.m) * shape.n * 2.0;
  t.smem_bytes = t.gmem_read_bytes * 3.0;
  t.bank_conflict_factor = 1.25;  // no permuted SMEM layout

  t.mma_flops = 2.0 * mp * kp * density * np;
  t.uses_sparse_alu = true;
  t.simd_flops = static_cast<double>(mp) * np * 2.0 +
                 meta_bytes * 2.0;  // software metadata unpack
  t.fixed_overhead_us = 5.0;
  return p;
}

KernelProfile VenomSpmmKernel::Analyze(const GemmShape& shape, const VenomConfig& config) {
  return Analyze(shape, config, DefaultDevice());
}

MatrixF VenomSpmmKernel::Run(const VenomMatrix& a, const MatrixF& b) {
  assert(a.cols == b.rows());
  MatrixF ad = a.ToDense();
  MatrixF bb = b;
  RoundMatrixToBf16(ad);
  RoundMatrixToBf16(bb);
  return GemmRef(ad, bb);
}

}  // namespace samoyeds
