// Cross-device tuning-mismatch model (§6.6, Fig. 18, Table 6).
//
// Research kernels (VENOM, Samoyeds) ship one configuration tuned on their
// native development GPU; vendor libraries re-tune per device. When a
// kernel is ported, the balance between memory bandwidth and tensor-core
// throughput shifts, and a kernel whose pipeline was tuned for the native
// balance loses efficiency proportionally to (a) how far the balance moved
// and (b) how sensitive its design is to that balance. The paper attributes
// VENOM's collapse on the A100 to exactly this memory-compute imbalance,
// and Samoyeds' robustness to its sparse-memory-access paradigm.

#ifndef SAMOYEDS_SRC_KERNELS_TUNING_H_
#define SAMOYEDS_SRC_KERNELS_TUNING_H_

#include <algorithm>
#include <cmath>

#include "src/simgpu/device_spec.h"

namespace samoyeds {

// Multiplicative efficiency retention in (0, 1] when running a kernel tuned
// on `native` on `target`. sensitivity = 0 models per-device re-tuning
// (vendor libraries); larger values model brittle hand-tuned pipelines.
inline double PortabilityFactor(const DeviceSpec& native, const DeviceSpec& target,
                                double sensitivity) {
  if (&native == &target || sensitivity <= 0.0) {
    return 1.0;
  }
  const double bw_ratio = target.dram_bandwidth_gbps / native.dram_bandwidth_gbps;
  const double tc_ratio = target.tc_dense_tflops / native.tc_dense_tflops;
  const double imbalance = std::fabs(std::log(bw_ratio / tc_ratio));
  // Secondary term: L2-capacity shift changes the effective tile residency a
  // fixed tiling was chosen for.
  const double l2_shift = std::fabs(std::log(static_cast<double>(target.l2_bytes) /
                                             static_cast<double>(native.l2_bytes)));
  const double loss = sensitivity * (imbalance + 0.15 * l2_shift);
  return std::clamp(1.0 / (1.0 + loss), 0.25, 1.0);
}

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_KERNELS_TUNING_H_
