#include "src/kernels/sputnik_spmm.h"

#include <cassert>

namespace samoyeds {

KernelProfile SputnikSpmmKernel::Analyze(const GemmShape& shape, double density) {
  KernelProfile p;
  p.kernel_name = "Sputnik-like CSR";
  p.useful_flops = 2.0 * shape.m * shape.k * shape.n;

  const double nnz = static_cast<double>(shape.m) * shape.k * density;
  const int64_t n_tiles = RoundUp(shape.n, kTileN) / kTileN;
  const int64_t blocks = RoundUp(shape.m, kRowsPerBlock) / kRowsPerBlock * n_tiles;

  TrafficReport& t = p.traffic;
  t.thread_blocks = blocks;
  t.warps_per_block = 4;
  t.pipeline_stages = 1;  // no cp.async multi-buffering
  t.smem_bytes_per_block = 16 << 10;
  t.regs_per_thread = 96;
  t.efficiency = kEfficiency;

  // Sputnik stores fp32 values + int32 column indices; the CSR payload is
  // re-read once per n-tile. Each non-zero triggers a gather of a kTileN-wide
  // B row segment; segments from scattered rows are only partially
  // coalescable.
  const double csr_bytes = nnz * (4.0 + 4.0) * static_cast<double>(n_tiles);
  // Every non-zero gathers a kTileN-wide B row segment in each of the n
  // tiles: nnz * 4 bytes per output column in total.
  const double b_total = nnz * kTileN * 4.0 * static_cast<double>(n_tiles);
  t.gmem_read_bytes = csr_bytes + b_total;
  t.gmem_uncoalesced_bytes = 0.5 * b_total;
  t.gmem_write_bytes = static_cast<double>(shape.m) * shape.n * 4.0;
  t.gmem_unique_bytes = nnz * 8.0 + static_cast<double>(shape.k) * shape.n * 4.0 +
                        static_cast<double>(shape.m) * shape.n * 4.0;
  t.smem_bytes = t.gmem_read_bytes;
  t.bank_conflict_factor = 1.1;

  t.mma_flops = 0.0;  // CUDA cores only
  t.uses_sparse_alu = false;
  t.simd_flops = 2.0 * nnz * shape.n + nnz * 4.0;  // FMA stream + index decode
  t.fixed_overhead_us = 5.0;
  return p;
}

MatrixF SputnikSpmmKernel::Run(const CsrMatrix& a, const MatrixF& b) {
  assert(a.cols == b.rows());
  // Sputnik computes in fp32; no bf16 rounding.
  return a.Multiply(b);
}

}  // namespace samoyeds
