#include "src/kernels/dense_gemm.h"

#include <cassert>

#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"

namespace samoyeds {

KernelProfile DenseGemmKernel::Analyze(const GemmShape& shape) {
  KernelProfile p;
  p.kernel_name = "cuBLAS-like dense";
  p.useful_flops = 2.0 * shape.m * shape.k * shape.n;

  const int64_t mp = RoundUp(shape.m, kTileM);
  const int64_t np = RoundUp(shape.n, kTileN);
  const int64_t kp = RoundUp(shape.k, kTileK);
  const int64_t blocks = (mp / kTileM) * (np / kTileN);

  TrafficReport& t = p.traffic;
  t.thread_blocks = blocks;
  t.warps_per_block = 8;
  t.pipeline_stages = kStages;
  t.smem_bytes_per_block = static_cast<int64_t>(kStages) * (kTileM + kTileN) * kTileK * 2;
  t.regs_per_thread = 160;
  t.efficiency = kEfficiency;

  // Each block streams an mb x k panel of A and a k x nb panel of B.
  t.gmem_read_bytes = static_cast<double>(blocks) * (kTileM * kp + kp * kTileN) * 2.0;
  t.gmem_write_bytes = static_cast<double>(mp) * np * 2.0;
  t.gmem_unique_bytes = static_cast<double>(shape.m) * shape.k * 2.0 +
                        static_cast<double>(shape.k) * shape.n * 2.0 +
                        static_cast<double>(shape.m) * shape.n * 2.0;
  t.gmem_uncoalesced_bytes = 0.0;

  // Every loaded tile byte is written to SMEM once and read back by the
  // consuming warps roughly twice (double-sided reuse inside the block).
  t.smem_bytes = t.gmem_read_bytes * 3.0;
  t.bank_conflict_factor = 1.0;

  t.mma_flops = 2.0 * mp * kp * np;  // dense tensor cores, padded tiles
  t.uses_sparse_alu = false;
  t.simd_flops = static_cast<double>(mp) * np * 2.0;  // epilogue
  t.fixed_overhead_us = 5.0;
  return p;
}

MatrixF DenseGemmKernel::Run(const MatrixF& a, const MatrixF& b) {
  assert(a.cols() == b.rows());
  MatrixF ab = a;
  MatrixF bb = b;
  RoundMatrixToBf16(ab);
  RoundMatrixToBf16(bb);
  return GemmRef(ab, bb);
}

}  // namespace samoyeds
