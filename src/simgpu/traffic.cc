#include "src/simgpu/traffic.h"

#include <algorithm>

namespace samoyeds {

TrafficReport& TrafficReport::operator+=(const TrafficReport& other) {
  // Combining two kernel phases: bytes and flops add; launch-shape fields
  // take a traffic-weighted compromise so the occupancy model still sees a
  // representative configuration.
  const double self_weight = gmem_read_bytes + gmem_write_bytes + mma_flops + simd_flops;
  const double other_weight =
      other.gmem_read_bytes + other.gmem_write_bytes + other.mma_flops + other.simd_flops;

  gmem_read_bytes += other.gmem_read_bytes;
  gmem_write_bytes += other.gmem_write_bytes;
  gmem_unique_bytes += other.gmem_unique_bytes;
  gmem_uncoalesced_bytes += other.gmem_uncoalesced_bytes;
  alltoall_dispatch_bytes += other.alltoall_dispatch_bytes;
  alltoall_combine_bytes += other.alltoall_combine_bytes;
  smem_bytes += other.smem_bytes;
  mma_flops += other.mma_flops;
  simd_flops += other.simd_flops;
  uses_sparse_alu = uses_sparse_alu || other.uses_sparse_alu;
  thread_blocks += other.thread_blocks;
  fixed_overhead_us += other.fixed_overhead_us;

  const double total_weight = self_weight + other_weight;
  if (total_weight > 0.0) {
    const double w = other_weight / total_weight;
    auto blend = [w](double a, double b) { return a * (1.0 - w) + b * w; };
    bank_conflict_factor = blend(bank_conflict_factor, other.bank_conflict_factor);
    efficiency = blend(efficiency, other.efficiency);
    warps_per_block = static_cast<int>(
        blend(static_cast<double>(warps_per_block), static_cast<double>(other.warps_per_block)) +
        0.5);
    smem_bytes_per_block = static_cast<int64_t>(blend(static_cast<double>(smem_bytes_per_block),
                                                      static_cast<double>(other.smem_bytes_per_block)) +
                                                0.5);
    pipeline_stages = std::max(1, static_cast<int>(blend(pipeline_stages, other.pipeline_stages) + 0.5));
  }
  return *this;
}

TrafficReport operator+(TrafficReport lhs, const TrafficReport& rhs) {
  lhs += rhs;
  return lhs;
}

}  // namespace samoyeds
