#include "src/simgpu/timing_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace samoyeds {

int TimingModel::ResidentBlocksPerSm(const DeviceSpec& d, const TrafficReport& r) {
  int blocks = d.max_blocks_per_sm;
  if (r.smem_bytes_per_block > 0) {
    blocks = std::min<int64_t>(blocks, d.smem_per_sm_bytes / std::max<int64_t>(1, r.smem_bytes_per_block));
  }
  if (r.warps_per_block > 0) {
    blocks = std::min(blocks, d.max_warps_per_sm / r.warps_per_block);
    const int64_t regs_per_block =
        static_cast<int64_t>(r.warps_per_block) * 32 * std::max(1, r.regs_per_thread);
    blocks = std::min<int64_t>(blocks, d.regs_per_sm / std::max<int64_t>(1, regs_per_block));
  }
  return std::max(1, blocks);
}

namespace {

// Resident blocks per SM given the block's resource appetite.
int BlocksPerSm(const DeviceSpec& d, const TrafficReport& r) {
  return TimingModel::ResidentBlocksPerSm(d, r);
}

}  // namespace

double TimingModel::LlcBandwidthBytesPerS() const {
  const double gbps = device_.llc_bandwidth_gbps > 0.0
                          ? device_.llc_bandwidth_gbps
                          : device_.dram_bandwidth_gbps * kL2BandwidthRatio;
  return gbps * 1e9;
}

double TimingModel::MemoryLevelMs(double bytes, bool from_llc) const {
  if (bytes <= 0.0) {
    return 0.0;
  }
  const double bw = from_llc ? LlcBandwidthBytesPerS() : device_.dram_bandwidth_gbps * 1e9;
  const double latency_us = from_llc ? device_.llc_latency_us : device_.dram_latency_us;
  if (bw <= 0.0) {
    return 0.0;
  }
  return latency_us * 1e-3 + bytes / bw * 1e3;
}

TimingEstimate TimingModel::Estimate(const TrafficReport& r) const {
  TimingEstimate e;
  const DeviceSpec& d = device_;

  // ---- Parallelism --------------------------------------------------------
  const int blocks_per_sm = BlocksPerSm(d, r);
  const int warps_per_block = std::max(1, r.warps_per_block);
  const double warps_available = static_cast<double>(std::max<int64_t>(1, r.thread_blocks)) *
                                 warps_per_block;
  const double warps_for_peak = kWarpsForPeakPerSm * d.sm_count;
  // Linear ramp until the chip has enough warps in flight to hide latency.
  const double latency_eff = std::min(1.0, warps_available / warps_for_peak);

  const double concurrent_capacity = static_cast<double>(blocks_per_sm) * d.sm_count;
  double tail_eff = 1.0;
  if (static_cast<double>(r.thread_blocks) > concurrent_capacity) {
    const double waves = std::ceil(static_cast<double>(r.thread_blocks) / concurrent_capacity);
    tail_eff = static_cast<double>(r.thread_blocks) / (waves * concurrent_capacity);
  }
  e.parallel_efficiency = std::max(1e-3, latency_eff * tail_eff);
  e.occupancy = std::min(1.0, static_cast<double>(blocks_per_sm * warps_per_block) /
                                  d.max_warps_per_sm);
  // Bandwidth achieved also degrades when too few warps issue requests.
  const double mlp_eff = std::min(1.0, 0.25 + 0.75 * (warps_available / warps_for_peak));

  // ---- Compute ------------------------------------------------------------
  // mma_flops are *executed* FLOPs (skipped MACs excluded), issued at the
  // dense tensor-core rate; the 2x SpTC benefit therefore appears as fewer
  // executed FLOPs for 2:4-compressed operands.
  const double tc_rate = d.tc_dense_tflops * 1e12;
  const double simd_rate = d.simd_tflops * 1e12;
  double t_compute = 0.0;
  if (r.mma_flops > 0.0) {
    t_compute += r.mma_flops / tc_rate;
  }
  if (r.simd_flops > 0.0) {
    t_compute += r.simd_flops / simd_rate;
  }

  // ---- Global memory ------------------------------------------------------
  const double coalesced_reads = std::max(0.0, r.gmem_read_bytes - r.gmem_uncoalesced_bytes);
  const double l2_traffic = coalesced_reads +
                            r.gmem_uncoalesced_bytes * kUncoalescedAmplification +
                            r.gmem_write_bytes;
  const double unique = std::max(1.0, r.gmem_unique_bytes);
  // Repeat traffic hits in L2 when the *active* working set — the slice of
  // the footprint touched by concurrently resident blocks — fits. Tiled
  // kernels with far more blocks than the chip can host stream through small
  // hot panels, which is why real GEMMs stay compute-bound even when the
  // matrices dwarf the L2.
  const double resident_fraction =
      std::min(1.0, concurrent_capacity / static_cast<double>(std::max<int64_t>(1, r.thread_blocks)));
  const double active_ws = std::max(1.0, unique * resident_fraction);
  const double l2_hit = std::clamp(static_cast<double>(d.l2_bytes) / active_ws, 0.0, 1.0);
  // Writes are write-through to DRAM eventually; they floor the DRAM volume.
  const double dram_traffic = std::min(
      l2_traffic,
      std::max(unique + (l2_traffic - unique) * (1.0 - l2_hit), r.gmem_write_bytes));
  const double dram_bw = d.dram_bandwidth_gbps * 1e9 * mlp_eff;
  const double l2_bw = LlcBandwidthBytesPerS() * mlp_eff;
  const double t_dram = std::max(dram_traffic / dram_bw, l2_traffic / l2_bw);

  // ---- Shared memory ------------------------------------------------------
  const double t_smem = r.smem_bytes * std::max(1.0, r.bank_conflict_factor) /
                        (d.smem_bandwidth_gbps * 1e9);

  // ---- Combine with pipeline overlap -------------------------------------
  // Compute throughput needs the full warp complement (latency ramp); the
  // memory side is already scaled by the request-parallelism factor mlp_eff,
  // so it only pays the tail-wave quantization — charging it the latency
  // ramp again would double-count the same missing warps.
  const double t_compute_eff = t_compute / e.parallel_efficiency;
  const double t_dram_eff = t_dram / tail_eff;
  const double t_smem_eff = t_smem / tail_eff;

  const int stages = std::max(1, r.pipeline_stages);
  e.overlap_fraction = 1.0 - 1.0 / static_cast<double>(stages);
  const double t_mem = std::max(t_dram_eff, t_smem_eff);
  const double bound = std::max(t_compute_eff, t_mem);
  const double other = std::min(t_compute_eff, t_mem);
  double total = bound + (1.0 - e.overlap_fraction) * other;

  total /= std::clamp(r.efficiency, 0.05, 1.0);
  if (r.mainloop_iterations > 0) {
    // Pipeline fill/drain bubbles: (stages - 1) of the k-step iterations per
    // block produce no useful MMA issue.
    total *= 1.0 + static_cast<double>(stages - 1) / static_cast<double>(r.mainloop_iterations);
  }
  total += r.fixed_overhead_us * 1e-6;

  e.compute_ms = t_compute_eff * 1e3;
  e.dram_ms = t_dram_eff * 1e3;
  e.smem_ms = t_smem_eff * 1e3;
  e.total_ms = total * 1e3;
  assert(std::isfinite(e.total_ms) && e.total_ms >= 0.0);
  return e;
}

double TimingModel::InterconnectPhaseMs(double bytes) const {
  if (bytes <= 0.0 || !device_.has_interconnect()) {
    return 0.0;
  }
  return device_.link_latency_us * 1e-3 + bytes / (device_.link_bandwidth_gbps * 1e9) * 1e3;
}

double TimingModel::AllToAllMs(const TrafficReport& report, int num_shards) const {
  if (num_shards <= 1) {
    return 0.0;
  }
  const double shards = static_cast<double>(num_shards);
  return InterconnectPhaseMs(report.alltoall_dispatch_bytes / shards) +
         InterconnectPhaseMs(report.alltoall_combine_bytes / shards);
}

double TimingModel::OverlappedPhaseMs(double a_ms, double b_ms, double efficiency) {
  const double a = std::max(0.0, a_ms);
  const double b = std::max(0.0, b_ms);
  const double e = std::min(1.0, std::max(0.0, efficiency));
  return std::max(a, b) + (1.0 - e) * std::min(a, b);
}

double TimingModel::ThroughputTflops(double useful_flops, const TrafficReport& report) const {
  const TimingEstimate e = Estimate(report);
  if (e.total_ms <= 0.0) {
    return 0.0;
  }
  return useful_flops / (e.total_ms * 1e-3) / 1e12;
}

}  // namespace samoyeds
