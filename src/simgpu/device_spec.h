// Hardware descriptions for the GPU execution simulator.
//
// The reproduction substitutes real GPUs with an analytic model; a
// DeviceSpec captures exactly the resources the paper's analysis reasons
// about: SM count, SMEM/L2 capacities, DRAM bandwidth and capacity, tensor
// core throughput, the 2x sparse-ALU speedup, and CUDA-core (SIMD)
// throughput for kernels that cannot use tensor cores (e.g. Sputnik).
//
// Throughput numbers are public spec-sheet values (bf16 with fp32
// accumulation for tensor cores). Absolute accuracy is not required — the
// experiments compare kernels against each other on the *same* device.

#ifndef SAMOYEDS_SRC_SIMGPU_DEVICE_SPEC_H_
#define SAMOYEDS_SRC_SIMGPU_DEVICE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace samoyeds {

struct DeviceSpec {
  std::string name;
  int sm_count = 0;
  int max_warps_per_sm = 48;
  int max_blocks_per_sm = 16;
  int64_t smem_per_sm_bytes = 0;
  int64_t regs_per_sm = 65536;            // 32-bit registers
  int64_t l1_per_sm_bytes = 128 << 10;
  int64_t l2_bytes = 0;
  double dram_bandwidth_gbps = 0.0;       // GB/s
  int64_t dram_capacity_bytes = 0;

  // -- Explicit memory hierarchy (LLC + DRAM levels) ------------------------
  // The last-level cache (the device L2; `l2_bytes` is its capacity) as a
  // bandwidth/latency level of its own, consumed by the timing model's
  // repeat-traffic roofline and the cache-aware autotuner's residency term.
  // llc_bandwidth_gbps == 0 falls back to the historical
  // TimingModel::kL2BandwidthRatio multiple of DRAM bandwidth (every
  // built-in device sets it to exactly that multiple, so Estimate output is
  // unchanged; custom specs can diverge). Latencies are fixed per-pass
  // charges for the residency model only — they do not feed Estimate.
  double llc_bandwidth_gbps = 0.0;
  double llc_latency_us = 0.0;
  double dram_latency_us = 0.0;
  double tc_dense_tflops = 0.0;           // bf16 FMA on tensor cores, fp32 acc
  double sparse_alu_speedup = 2.0;        // SpTC peak vs dense TC (1.0 = none)
  double simd_tflops = 0.0;               // fp32 CUDA-core throughput
  // Aggregate shared-memory bandwidth across the chip (GB/s). Roughly
  // 128 bytes/clk/SM; precision does not matter, only cross-device ratios.
  double smem_bandwidth_gbps = 0.0;

  // -- Interconnect (expert-parallel sharding) ------------------------------
  // Per-link, per-direction bandwidth to a peer device in the same
  // SimCluster (NVLink for datacenter parts, PCIe for consumer cards) and
  // the fixed per-transfer latency. link_bandwidth_gbps == 0 means the
  // device has no peer interconnect (single-device serving only); the
  // timing model then charges no all-to-all time.
  double link_bandwidth_gbps = 0.0;
  double link_latency_us = 0.0;

  // -- Host link (KV-page swap tier) ----------------------------------------
  // Device <-> host-memory path (PCIe for every part, including NVLink-mesh
  // datacenter boards whose host attach is still PCIe): per-direction
  // bandwidth and fixed per-transfer latency. Swap-style preemption charges
  // transfers against this link, sized from the bytes actually moved.
  // host_bandwidth_gbps == 0 means no modeled host tier (swap falls back to
  // recompute).
  double host_bandwidth_gbps = 0.0;
  double host_latency_us = 0.0;

  bool has_sparse_alu() const { return sparse_alu_speedup > 1.0; }
  bool has_interconnect() const { return link_bandwidth_gbps > 0.0; }
  bool has_host_link() const { return host_bandwidth_gbps > 0.0; }
};

// Devices used in the paper's evaluation (§6, §6.6).
enum class DeviceModel {
  kRtx4070Super,  // primary evaluation platform
  kRtx3070,       // artifact appendix E6 porting target
  kRtx3090,
  kRtx4090,
  kA100_40G,
  kH100_SXM,
};

const DeviceSpec& GetDevice(DeviceModel model);
const DeviceSpec& DefaultDevice();  // RTX 4070 Super
std::vector<DeviceModel> AllDeviceModels();

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SIMGPU_DEVICE_SPEC_H_
