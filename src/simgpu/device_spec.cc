#include "src/simgpu/device_spec.h"

namespace samoyeds {
namespace {

constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

DeviceSpec MakeRtx4070Super() {
  DeviceSpec d;
  d.name = "NVIDIA GeForce RTX 4070 Super";
  d.sm_count = 56;
  d.max_warps_per_sm = 48;
  d.smem_per_sm_bytes = 100 * kKiB;
  d.l1_per_sm_bytes = 128 * kKiB;
  d.l2_bytes = 48 * kMiB;
  d.dram_bandwidth_gbps = 504.0;
  d.dram_capacity_bytes = 12 * kGiB;
  d.llc_bandwidth_gbps = 10.0 * d.dram_bandwidth_gbps;  // kL2BandwidthRatio, kept exact
  d.llc_latency_us = 0.25;
  d.dram_latency_us = 0.47;
  d.tc_dense_tflops = 92.0;
  d.sparse_alu_speedup = 2.0;
  d.simd_tflops = 35.5;
  d.smem_bandwidth_gbps = 17000.0;
  d.link_bandwidth_gbps = 25.0;  // PCIe 4.0 x16, per direction
  d.link_latency_us = 5.0;
  d.host_bandwidth_gbps = 25.0;  // host attach is the same PCIe 4.0 x16 link
  d.host_latency_us = 5.0;
  return d;
}

DeviceSpec MakeRtx3090() {
  DeviceSpec d;
  d.name = "NVIDIA GeForce RTX 3090";
  d.sm_count = 82;
  d.max_warps_per_sm = 48;
  d.smem_per_sm_bytes = 100 * kKiB;
  d.l1_per_sm_bytes = 128 * kKiB;
  d.l2_bytes = 6 * kMiB;
  d.dram_bandwidth_gbps = 936.0;
  d.dram_capacity_bytes = 24 * kGiB;
  d.llc_bandwidth_gbps = 10.0 * d.dram_bandwidth_gbps;  // kL2BandwidthRatio, kept exact
  d.llc_latency_us = 0.25;
  d.dram_latency_us = 0.47;
  d.tc_dense_tflops = 71.0;  // slower tensor cores than Ada (§6.6)
  d.sparse_alu_speedup = 2.0;
  d.simd_tflops = 35.6;
  d.smem_bandwidth_gbps = 19000.0;
  d.link_bandwidth_gbps = 25.0;  // PCIe 4.0 x16, per direction
  d.link_latency_us = 5.0;
  d.host_bandwidth_gbps = 25.0;  // host attach is the same PCIe 4.0 x16 link
  d.host_latency_us = 5.0;
  return d;
}

DeviceSpec MakeRtx3070() {
  DeviceSpec d;
  d.name = "NVIDIA GeForce RTX 3070";
  d.sm_count = 46;
  d.max_warps_per_sm = 48;
  d.smem_per_sm_bytes = 100 * kKiB;
  d.l1_per_sm_bytes = 128 * kKiB;
  d.l2_bytes = 4 * kMiB;
  d.dram_bandwidth_gbps = 448.0;
  d.dram_capacity_bytes = 8 * kGiB;
  d.llc_bandwidth_gbps = 10.0 * d.dram_bandwidth_gbps;  // kL2BandwidthRatio, kept exact
  d.llc_latency_us = 0.25;
  d.dram_latency_us = 0.47;
  d.tc_dense_tflops = 40.0;
  d.sparse_alu_speedup = 2.0;
  d.simd_tflops = 20.3;
  d.smem_bandwidth_gbps = 10500.0;
  d.link_bandwidth_gbps = 25.0;  // PCIe 4.0 x16, per direction
  d.link_latency_us = 5.0;
  d.host_bandwidth_gbps = 25.0;  // host attach is the same PCIe 4.0 x16 link
  d.host_latency_us = 5.0;
  return d;
}

DeviceSpec MakeRtx4090() {
  DeviceSpec d;
  d.name = "NVIDIA GeForce RTX 4090";
  d.sm_count = 128;
  d.max_warps_per_sm = 48;
  d.smem_per_sm_bytes = 100 * kKiB;
  d.l1_per_sm_bytes = 128 * kKiB;
  d.l2_bytes = 72 * kMiB;
  d.dram_bandwidth_gbps = 1008.0;
  d.dram_capacity_bytes = 24 * kGiB;
  d.llc_bandwidth_gbps = 10.0 * d.dram_bandwidth_gbps;  // kL2BandwidthRatio, kept exact
  d.llc_latency_us = 0.25;
  d.dram_latency_us = 0.47;
  d.tc_dense_tflops = 165.0;
  d.sparse_alu_speedup = 2.0;
  d.simd_tflops = 82.6;
  d.smem_bandwidth_gbps = 40000.0;
  d.link_bandwidth_gbps = 25.0;  // PCIe 4.0 x16, per direction
  d.link_latency_us = 5.0;
  d.host_bandwidth_gbps = 25.0;  // host attach is the same PCIe 4.0 x16 link
  d.host_latency_us = 5.0;
  return d;
}

DeviceSpec MakeA100_40G() {
  DeviceSpec d;
  d.name = "NVIDIA A100 40GB";
  d.sm_count = 108;
  d.max_warps_per_sm = 64;
  d.smem_per_sm_bytes = 164 * kKiB;
  d.l1_per_sm_bytes = 192 * kKiB;
  d.l2_bytes = 40 * kMiB;  // smaller L2 than the 4070S (Table 6)
  d.dram_bandwidth_gbps = 1555.0;
  d.dram_capacity_bytes = 40 * kGiB;
  d.llc_bandwidth_gbps = 10.0 * d.dram_bandwidth_gbps;  // kL2BandwidthRatio, kept exact
  d.llc_latency_us = 0.2;
  d.dram_latency_us = 0.4;
  d.tc_dense_tflops = 312.0;
  d.sparse_alu_speedup = 2.0;
  d.simd_tflops = 19.5;
  d.smem_bandwidth_gbps = 35000.0;
  d.link_bandwidth_gbps = 300.0;  // NVLink 3, per direction
  d.link_latency_us = 2.0;
  d.host_bandwidth_gbps = 25.0;  // host attach stays PCIe 4.0 x16
  d.host_latency_us = 5.0;
  return d;
}

DeviceSpec MakeH100() {
  DeviceSpec d;
  d.name = "NVIDIA H100 SXM";
  d.sm_count = 132;
  d.max_warps_per_sm = 64;
  d.smem_per_sm_bytes = 228 * kKiB;
  d.l1_per_sm_bytes = 256 * kKiB;
  d.l2_bytes = 50 * kMiB;
  d.dram_bandwidth_gbps = 3350.0;
  d.dram_capacity_bytes = 80 * kGiB;
  d.llc_bandwidth_gbps = 10.0 * d.dram_bandwidth_gbps;  // kL2BandwidthRatio, kept exact
  d.llc_latency_us = 0.18;
  d.dram_latency_us = 0.35;
  d.tc_dense_tflops = 756.0;
  d.sparse_alu_speedup = 2.0;
  d.simd_tflops = 67.0;
  d.smem_bandwidth_gbps = 55000.0;
  d.link_bandwidth_gbps = 450.0;  // NVLink 4, per direction
  d.link_latency_us = 1.8;
  d.host_bandwidth_gbps = 50.0;  // host attach is PCIe 5.0 x16
  d.host_latency_us = 4.0;
  return d;
}

}  // namespace

const DeviceSpec& GetDevice(DeviceModel model) {
  static const DeviceSpec rtx4070s = MakeRtx4070Super();
  static const DeviceSpec rtx3090 = MakeRtx3090();
  static const DeviceSpec rtx3070 = MakeRtx3070();
  static const DeviceSpec rtx4090 = MakeRtx4090();
  static const DeviceSpec a100 = MakeA100_40G();
  static const DeviceSpec h100 = MakeH100();
  switch (model) {
    case DeviceModel::kRtx4070Super:
      return rtx4070s;
    case DeviceModel::kRtx3090:
      return rtx3090;
    case DeviceModel::kRtx3070:
      return rtx3070;
    case DeviceModel::kRtx4090:
      return rtx4090;
    case DeviceModel::kA100_40G:
      return a100;
    case DeviceModel::kH100_SXM:
      return h100;
  }
  return rtx4070s;
}

const DeviceSpec& DefaultDevice() { return GetDevice(DeviceModel::kRtx4070Super); }

std::vector<DeviceModel> AllDeviceModels() {
  return {DeviceModel::kRtx4070Super, DeviceModel::kRtx3070, DeviceModel::kRtx3090,
          DeviceModel::kRtx4090, DeviceModel::kA100_40G, DeviceModel::kH100_SXM};
}

}  // namespace samoyeds
