// Traffic accounting shared by every kernel in the project.
//
// A kernel (real implementation or analytic profile) fills a TrafficReport
// describing how many bytes it moves at each level of the memory hierarchy
// and how much arithmetic it issues. The timing model converts a report
// plus a DeviceSpec into a simulated execution time.

#ifndef SAMOYEDS_SRC_SIMGPU_TRAFFIC_H_
#define SAMOYEDS_SRC_SIMGPU_TRAFFIC_H_

#include <cstdint>

namespace samoyeds {

struct TrafficReport {
  // -- Global memory --------------------------------------------------------
  // Total bytes requested from global memory across all thread blocks,
  // including re-loads of data shared between blocks (the L2/DRAM split is
  // derived from gmem_unique_bytes below).
  double gmem_read_bytes = 0.0;
  double gmem_write_bytes = 0.0;
  // Compulsory footprint: bytes that must come from DRAM at least once.
  double gmem_unique_bytes = 0.0;
  // Subset of gmem_read_bytes issued as scattered (uncoalesced) accesses;
  // these pay transaction-granularity amplification.
  double gmem_uncoalesced_bytes = 0.0;

  // -- Shared memory --------------------------------------------------------
  double smem_bytes = 0.0;             // total SMEM read+write volume
  double bank_conflict_factor = 1.0;   // >= 1, multiplies SMEM time

  // -- Interconnect (expert-parallel all-to-all) ----------------------------
  // Bytes that cross shard boundaries when routed tokens are dispatched to
  // remote experts and the expert outputs are combined back — only
  // (token-home, expert-shard) pairs on *different* shards are charged.
  // Zero for single-device execution. These bytes ride the inter-device
  // links, not HBM, so Estimate() ignores them; TimingModel::AllToAllMs /
  // InterconnectPhaseMs convert them to time.
  double alltoall_dispatch_bytes = 0.0;
  double alltoall_combine_bytes = 0.0;

  // -- Arithmetic -----------------------------------------------------------
  // FLOPs actually executed on (sparse) tensor cores: multiply-adds x 2.
  double mma_flops = 0.0;
  bool uses_sparse_alu = false;        // mma_flops run at SpTC rate if true
  // FLOPs executed on plain CUDA cores (decode, epilogue, scalar kernels).
  double simd_flops = 0.0;

  // -- Launch configuration -------------------------------------------------
  int64_t thread_blocks = 0;
  int warps_per_block = 0;
  int64_t smem_bytes_per_block = 0;
  int regs_per_thread = 128;
  int pipeline_stages = 1;             // cp.async multi-buffering depth
  // Main-loop (k-step) iterations per thread block; > 0 enables the
  // pipeline fill/drain cost (deep pipelines waste bubbles on short loops).
  int64_t mainloop_iterations = 0;

  // Fixed host+launch overhead in microseconds (kernel launches, allocator
  // traffic, stream synchronization). Framework-level emulations use this
  // for per-expert launch storms and permutation bookkeeping.
  double fixed_overhead_us = 0.0;

  // Library efficiency factor in (0, 1]: how close the implementation gets
  // to the roofline on its bound resource (black-box vendor libraries are
  // highly tuned; research kernels less so).
  double efficiency = 1.0;

  TrafficReport& operator+=(const TrafficReport& other);
};

TrafficReport operator+(TrafficReport lhs, const TrafficReport& rhs);

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SIMGPU_TRAFFIC_H_
