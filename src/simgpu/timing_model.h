// Roofline + occupancy timing model.
//
// Converts a TrafficReport (what a kernel moves and computes) plus a
// DeviceSpec (what the hardware can sustain) into a simulated execution
// time. The model captures the performance mechanisms the paper's
// evaluation discusses:
//
//   * compute vs memory rooflines with multi-stage pipeline overlap (§4.1),
//   * uncoalesced-access amplification (§3.3, Fig. 6),
//   * L2 capacity effects on repeated tile traffic (§6.6, Table 6),
//   * occupancy ramp with warp count, giving the linear throughput growth
//     in m/n and asymptotic growth in k of Fig. 13,
//   * tail-wave quantization for large grids,
//   * shared-memory bank-conflict penalties (§4.4).

#ifndef SAMOYEDS_SRC_SIMGPU_TIMING_MODEL_H_
#define SAMOYEDS_SRC_SIMGPU_TIMING_MODEL_H_

#include "src/simgpu/device_spec.h"
#include "src/simgpu/traffic.h"

namespace samoyeds {

struct TimingEstimate {
  double compute_ms = 0.0;     // tensor-core + CUDA-core time, post-occupancy
  double dram_ms = 0.0;        // DRAM/L2-bound time
  double smem_ms = 0.0;        // shared-memory-bound time
  double overlap_fraction = 0.0;
  double parallel_efficiency = 1.0;  // occupancy ramp x tail-wave efficiency
  double occupancy = 1.0;            // active warps / max warps per SM
  double total_ms = 0.0;

  bool memory_bound() const { return dram_ms > compute_ms; }
};

class TimingModel {
 public:
  explicit TimingModel(const DeviceSpec& device) : device_(device) {}

  TimingEstimate Estimate(const TrafficReport& report) const;

  // ---- Explicit memory hierarchy (LLC + DRAM levels) ----------------------
  // The device's last-level-cache bandwidth in bytes/s: the explicit
  // DeviceSpec::llc_bandwidth_gbps when set, else the historical
  // kL2BandwidthRatio multiple of DRAM bandwidth (identical for every
  // built-in device, so Estimate's numbers do not move).
  double LlcBandwidthBytesPerS() const;

  // Whether a modeled working set is resident in the LLC.
  bool FitsLlc(double working_set_bytes) const {
    return working_set_bytes <= static_cast<double>(device_.l2_bytes);
  }

  // Time to serve `bytes` from one level of the hierarchy: the level's fixed
  // access latency plus serialization at its bandwidth. `from_llc` selects
  // the LLC level; otherwise DRAM.
  double MemoryLevelMs(double bytes, bool from_llc) const;

  // Residency cost of a tile configuration: `repeat_bytes` (traffic beyond
  // the compulsory footprint — the re-reads of A panels across column tiles
  // and B panels across row tiles) is served by the LLC when
  // `working_set_bytes` fits it, and spills to DRAM when it does not. This
  // is the term the cache-aware autotuner ranks tile configs by; it is
  // intentionally *not* part of Estimate (whose L2-hit model covers the
  // average case) so existing simulated timings are unchanged.
  double ResidencyMs(double working_set_bytes, double repeat_bytes) const {
    return MemoryLevelMs(repeat_bytes, FitsLlc(working_set_bytes));
  }

  // Resident blocks per SM given a block's resource appetite (SMEM, warps,
  // registers). Exposed for the autotuner's active-working-set model.
  static int ResidentBlocksPerSm(const DeviceSpec& device, const TrafficReport& report);

  // Simulated throughput in TFLOP/s given the *useful* (dense-equivalent)
  // work of the operation; this is how the paper reports Fig. 12/13.
  double ThroughputTflops(double useful_flops, const TrafficReport& report) const;

  // Interconnect roofline for expert-parallel sharding. One all-to-all
  // phase over this device's peer link: fixed link latency plus
  // serialization at the per-link bandwidth. `bytes` is the busiest shard's
  // volume for the phase (max over shards of max(sent, received) — links
  // are full duplex). Returns 0 when nothing crosses a link or the device
  // has no interconnect.
  double InterconnectPhaseMs(double bytes) const;

  // Both all-to-all phases (dispatch + combine) of `report`, assuming the
  // cross-shard volume spreads evenly over `num_shards` links. Callers that
  // know the exact per-shard volumes (the serving engine does) should use
  // InterconnectPhaseMs with the busiest shard's bytes instead.
  double AllToAllMs(const TrafficReport& report, int num_shards) const;

  // Two phases that can execute concurrently (decode compute alongside a
  // prefill chunk, or an all-to-all transfer alongside compute): the longer
  // phase fully hides the shorter one at efficiency 1.0; at efficiency e the
  // hidden phase still exposes (1 - e) of itself (issue-slot contention,
  // imperfect double buffering). Monotone in both inputs, commutative, never
  // below max(a, b) and never above a + b — so an overlapped schedule can
  // only save time relative to the serial sum, never invent negative work.
  // Negative inputs and out-of-range efficiencies are clamped.
  static double OverlappedPhaseMs(double a_ms, double b_ms, double efficiency);

  const DeviceSpec& device() const { return device_; }

  // Warps per SM needed to reach peak issue rate; the ramp below this is
  // what produces the low-parallelism regime at m = n = 256 (§6.1.2).
  static constexpr double kWarpsForPeakPerSm = 12.0;
  // Effective amplification of scattered 32-bit accesses relative to fully
  // coalesced 128-byte transactions.
  static constexpr double kUncoalescedAmplification = 4.0;
  // L2 bandwidth relative to DRAM bandwidth (~10x on Ampere/Ada class
  // chips).
  static constexpr double kL2BandwidthRatio = 10.0;

 private:
  const DeviceSpec& device_;
};

}  // namespace samoyeds

#endif  // SAMOYEDS_SRC_SIMGPU_TIMING_MODEL_H_
