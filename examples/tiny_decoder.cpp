// Tiny decoder-only model, end to end: stack several decoder layers
// (RMSNorm -> causal attention -> residual -> RMSNorm -> MoE -> residual),
// prune every expert into the Samoyeds format, and run the whole stack
// through the dual-side sparse path — the functional miniature of the
// paper's §6.3 end-to-end setting.

#include <cstdio>

#include "src/moe/decoder_layer.h"
#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"

int main() {
  using namespace samoyeds;
  Rng rng(11);

  MoeModelConfig cfg;
  cfg.name = "tiny-decoder";
  cfg.num_experts = 8;
  cfg.hidden = 64;
  cfg.intermediate = 128;
  cfg.top_k = 2;
  const SamoyedsConfig fmt{1, 2, 32};
  const int layers = 3;
  const int heads = 4;
  const int64_t tokens = 24;

  std::printf("Building a %d-layer decoder: hidden %d, %d experts (top-%d), %d heads\n", layers,
              cfg.hidden, cfg.num_experts, cfg.top_k, heads);

  std::vector<DecoderLayerWeights> dense_layers;
  std::vector<SamoyedsDecoderLayerWeights> sparse_layers;
  int64_t dense_bytes = 0;
  int64_t sparse_bytes = 0;
  for (int l = 0; l < layers; ++l) {
    DecoderLayerWeights w = DecoderLayerWeights::Random(rng, cfg);
    const SamoyedsDecoderLayerWeights sw = SamoyedsDecoderLayerWeights::Encode(w, fmt);
    for (const auto& e : sw.moe.experts) {
      sparse_bytes += e.gate.StorageBytes() + e.up.StorageBytes() + e.down.StorageBytes();
    }
    dense_bytes += static_cast<int64_t>(cfg.num_experts) * cfg.expert_params() * 2;
    sparse_layers.push_back(sw);
    w.moe.ApplyMask(fmt);  // reference sees the surviving weights
    dense_layers.push_back(std::move(w));
  }
  std::printf("Expert weights: dense bf16 %lld KiB -> Samoyeds %lld KiB (%.1f%%)\n",
              static_cast<long long>(dense_bytes >> 10),
              static_cast<long long>(sparse_bytes >> 10),
              100.0 * static_cast<double>(sparse_bytes) / static_cast<double>(dense_bytes));

  MatrixF x = rng.GaussianMatrix(tokens, cfg.hidden, 0.5f);
  RoundMatrixToBf16(x);
  const MatrixF ref = DecoderStackForwardReference(x, dense_layers, heads, cfg.top_k,
                                                   Activation::kSilu);
  const MatrixF got = DecoderStackForwardSamoyeds(x, sparse_layers, heads, cfg.top_k,
                                                  Activation::kSilu);
  std::printf("Stack output: %lld x %lld; dual-side vs masked-dense relative error %.2e\n",
              static_cast<long long>(got.rows()), static_cast<long long>(got.cols()),
              RelativeError(got, ref));
  std::printf("First token, first 6 channels: ");
  for (int c = 0; c < 6; ++c) {
    std::printf("% .4f ", got(0, c));
  }
  std::printf("\n");
  return 0;
}
