// Pruning workflow: train a small model, prune it into several structured
// sparse formats at 75% sparsity, fine-tune under the mask, and compare
// quality — the offline half of deploying a model with Samoyeds (§6.5).

#include <cstdio>

#include "src/pruning/accuracy_eval.h"
#include "src/pruning/fisher.h"

int main() {
  using namespace samoyeds;
  Rng rng(2024);

  const int features = 64;
  const int classes = 16;
  const ClassificationDataset train =
      ClassificationDataset::Make(rng, 1024, features, classes, 0.8f);
  Rng test_rng(2024);
  const ClassificationDataset test =
      ClassificationDataset::Make(test_rng, 768, features, classes, 0.8f);

  std::vector<PruneSpec> specs(4);
  specs[0].method = PruneMethod::kDense;
  specs[1].method = PruneMethod::kUnstructured;
  specs[1].sparsity = 0.75;
  specs[2].method = PruneMethod::kVenom;
  specs[2].venom_config = VenomConfig{64, 2, 4};
  specs[3].method = PruneMethod::kSamoyeds;
  specs[3].samoyeds_config = SamoyedsConfig{1, 2, 16};

  PruneExperimentOptions options;
  options.pretrain_epochs = 40;
  options.finetune_epochs = 15;

  std::printf("Training a %d-%d-%d-%d MLP, then pruning the hidden layers to 75%%...\n\n",
              features, 128, 128, classes);
  const auto results =
      RunAccuracyExperiment(rng, {features, 128, 128, classes}, train, test, specs, options);

  std::printf("%-14s %10s %12s %12s %10s\n", "format", "sparsity", "one-shot", "fine-tuned",
              "retention");
  const double dense_acc = results[0].metric_after_finetune;
  for (const auto& r : results) {
    std::printf("%-14s %9.1f%% %11.2f%% %11.2f%% %9.1f%%\n", PruneMethodName(r.spec.method),
                100.0 * r.measured_sparsity, 100.0 * r.metric_before_finetune,
                100.0 * r.metric_after_finetune,
                100.0 * r.metric_after_finetune / dense_acc);
  }
  std::printf(
      "\nThe Samoyeds format's fine sub-row granularity keeps quality close to\n"
      "unstructured pruning while remaining executable on Sparse Tensor Cores;\n"
      "the encoded weights feed directly into SamoyedsMatrix::Encode (see\n"
      "examples/quickstart.cpp).\n");

  // Second-order variant: WoodFisher-style diagonal-Fisher saliency driving
  // the same Samoyeds structural mask (the paper's pruning pipeline, §6.5).
  Rng rng2(2024);
  Mlp model(rng2, {features, 128, 128, classes});
  for (int epoch = 0; epoch < 40; ++epoch) {
    MatrixF xb = train.x;  // full-batch for brevity
    model.TrainStepCrossEntropy(xb, train.labels, 0.05f);
  }
  const auto fisher = EstimateDiagonalFisher(model, train, 512);
  PruneSpec spec;
  spec.method = PruneMethod::kSamoyeds;
  spec.samoyeds_config = SamoyedsConfig{1, 2, 16};
  Mlp magnitude_model = model;
  ApplyPruning(magnitude_model.weight(1), spec);
  Mlp fisher_model = model;
  const MatrixF saliency = FisherSaliency(model.weight(1), fisher[1]);
  ApplyScoredPruning(fisher_model.weight(1), saliency, spec);
  std::printf(
      "\nOne-shot (no fine-tune) accuracy, Samoyeds (1,2,16) mask at 75%%:\n"
      "  magnitude-scored: %.2f%%\n  Fisher-scored:    %.2f%%\n",
      100.0 * EvaluateAccuracy(magnitude_model, test),
      100.0 * EvaluateAccuracy(fisher_model, test));
  return 0;
}
