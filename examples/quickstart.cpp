// Quickstart: encode a weight matrix in the Samoyeds dual-side format, run
// the sparse-sparse matmul kernel on a selected subset of input columns,
// check the result against the dense reference, and ask the performance
// simulator how the kernel compares to a cuBLAS-like dense GEMM.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/samoyeds_kernel.h"
#include "src/formats/samoyeds_format.h"
#include "src/formats/sel.h"
#include "src/kernels/dense_gemm.h"
#include "src/simgpu/timing_model.h"
#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"

int main() {
  using namespace samoyeds;
  Rng rng(42);

  // 1. A weight matrix (say, one expert's gate projection) and activations.
  const int64_t out_features = 256;
  const int64_t hidden = 512;
  const int64_t tokens = 96;
  MatrixF w = rng.GaussianMatrix(out_features, hidden);
  MatrixF x = rng.GaussianMatrix(hidden, tokens);  // already transposed (k x n)
  RoundMatrixToBf16(w);
  RoundMatrixToBf16(x);

  // 2. Encode the weights: (N,M,V) = (1,2,32) is the paper's default 75%
  //    configuration — keep 1 of every 2 sub-rows of length 32, then 2:4.
  const SamoyedsConfig format{1, 2, 32};
  const SamoyedsMatrix encoded = SamoyedsMatrix::Encode(w, format);
  std::printf("Encoded %lld x %lld weights at %.0f%% sparsity: %lld KiB (dense bf16: %lld KiB)\n",
              static_cast<long long>(out_features), static_cast<long long>(hidden),
              100.0 * format.sparsity(), static_cast<long long>(encoded.StorageBytes() >> 10),
              static_cast<long long>(out_features * hidden * 2 >> 10));

  // 3. The input side of the dual-side format: a SEL array naming the token
  //    columns this expert received from the router.
  Selection sel;
  sel.full_size = tokens;
  for (int32_t t = 0; t < tokens; t += 3) {
    sel.indices.push_back(t);  // every third token
  }
  std::printf("SEL selects %lld of %lld token columns\n",
              static_cast<long long>(sel.selected()), static_cast<long long>(tokens));

  // 4. Run the dual-side sparse-sparse kernel (functional SpTC path).
  const MatrixF y = SamoyedsKernel::Run(encoded, x, sel);

  // 5. Verify against the dense reference on the decoded (masked) weights.
  const MatrixF reference = GemmRef(encoded.ToDense(), GatherColumns(x, sel));
  std::printf("Max |kernel - reference| = %.2e\n", MaxAbsDiff(y, reference));

  // 6. Ask the performance simulator for the expected speedup on the
  //    paper's evaluation GPU (RTX 4070 Super).
  const GemmShape shape{out_features, hidden, tokens};
  const TimingModel model(DefaultDevice());
  const auto samoyeds_profile =
      SamoyedsKernel::Analyze(shape, sel.selected(), format, SsmmConfig::Default());
  const auto dense_profile = DenseGemmKernel::Analyze(shape);
  const double samoyeds_ms = model.Estimate(samoyeds_profile.traffic).total_ms;
  const double dense_ms = model.Estimate(dense_profile.traffic).total_ms;
  std::printf("Simulated on %s: Samoyeds %.4f ms vs dense %.4f ms (%.2fx)\n",
              DefaultDevice().name.c_str(), samoyeds_ms, dense_ms, dense_ms / samoyeds_ms);
  return 0;
}
