// Portability & tuning tour: run the same Samoyeds kernel configuration on
// every modeled GPU, then let the autotuner search the configuration space
// per device — the workflow a user follows when deploying on hardware other
// than the paper's RTX 4070 Super (§6.6, Table 6).

#include <cstdio>

#include "src/core/autotune.h"
#include "src/core/samoyeds_kernel.h"
#include "src/simgpu/timing_model.h"

namespace {

void TuneShape(const samoyeds::GemmShape& shape) {
  using namespace samoyeds;
  const SamoyedsConfig format{1, 2, 32};
  std::printf("\nShape %lld x %lld x %lld at 75%% weight sparsity:\n",
              static_cast<long long>(shape.m), static_cast<long long>(shape.k),
              static_cast<long long>(shape.n));
  std::printf("%-28s %12s %12s %9s %22s\n", "device", "default", "autotuned", "gain",
              "chosen (mb,nb,stages)");
  for (DeviceModel dm : AllDeviceModels()) {
    const DeviceSpec& device = GetDevice(dm);
    const AutotuneResult r = AutotuneSsmm(shape, shape.n, format, device);
    std::printf("%-28s %10.3fms %10.3fms %8.2fx %12d,%4d,%3d\n", device.name.c_str(),
                r.default_ms, r.simulated_ms, r.speedup_over_default(), r.config.mb, r.config.nb,
                r.config.stages);
  }
}

}  // namespace

int main() {
  using namespace samoyeds;
  std::printf("Samoyeds kernel autotuning across devices\n");
  TuneShape({4096, 4096, 4096});    // square, compute-heavy
  TuneShape({14336, 4096, 1024});   // expert projection, modest tokens
  TuneShape({2048, 1408, 256});     // small many-expert slice
  std::printf(
      "\nRule of thumb (Table 6): more SMs + less L2 (A100) -> shrink the tile;\n"
      "more bandwidth + slower tensor cores (RTX 3090) -> deepen the pipeline.\n"
      "The autotuner discovers these adaptations automatically from the device\n"
      "description.\n");
  return 0;
}
