// MoE inference walkthrough: build a (scaled-down) Mixtral-style MoE layer,
// route a batch of tokens, execute it functionally along both the
// Transformers-style reference path and the Samoyeds dual-side sparse path,
// compare outputs, then project the performance of the full-size layer on
// the simulated GPU for every framework the paper evaluates.

#include <cstdio>

#include "src/frameworks/layer_cost.h"
#include "src/moe/model_configs.h"
#include "src/moe/moe_layer.h"
#include "src/tensor/bf16.h"
#include "src/tensor/gemm_ref.h"
#include "src/tensor/rng.h"

int main() {
  using namespace samoyeds;
  Rng rng(7);

  // --- Functional path on a scaled-down layer -----------------------------
  MoeModelConfig small;
  small.name = "mini-mixtral";
  small.num_experts = 8;
  small.hidden = 64;
  small.intermediate = 128;
  small.top_k = 2;

  const SamoyedsConfig format{1, 2, 32};
  MoeLayerWeights dense = MoeLayerWeights::Random(rng, small);
  const SamoyedsMoeLayerWeights sparse = SamoyedsMoeLayerWeights::Encode(dense, format);
  dense.ApplyMask(format);  // reference sees the same surviving weights

  const int64_t tokens = 48;
  MatrixF x = rng.GaussianMatrix(tokens, small.hidden, 0.5f);
  RoundMatrixToBf16(x);
  const RoutingPlan plan = Route(x, dense.router_gate, small.top_k);
  std::printf("Routed %lld tokens to %d experts (top-%d); per-expert loads:",
              static_cast<long long>(tokens), small.num_experts, small.top_k);
  for (int e = 0; e < small.num_experts; ++e) {
    std::printf(" %lld", static_cast<long long>(plan.TokensForExpert(e)));
  }
  std::printf("\n");

  const MatrixF reference = MoeForwardReference(x, dense, plan, Activation::kSilu);
  const MatrixF samoyeds_out = MoeForwardSamoyeds(x, sparse, plan, Activation::kSilu);
  std::printf("Dual-side sparse vs reference: relative error %.2e\n\n",
              RelativeError(samoyeds_out, reference));

  // --- Performance projection for the real Mixtral-8x7B layer -------------
  const auto& mixtral = ModelByName("Mixtral-8x7B");
  const int64_t full_tokens = 4096;
  const auto counts = UniformTokensPerExpert(mixtral, full_tokens);
  LayerCostOptions opts;
  opts.shared_experts_override = 0;
  std::printf("Projected Mixtral-8x7B MoE layer, %lld tokens, on %s:\n",
              static_cast<long long>(full_tokens), GetDevice(opts.device).name.c_str());
  for (MoeFramework fw : {MoeFramework::kTransformers, MoeFramework::kMegaBlocks,
                          MoeFramework::kVllmDs, MoeFramework::kPit, MoeFramework::kSamoyeds}) {
    const MoeLayerCost cost = EstimateMoeLayerCost(fw, mixtral, counts, full_tokens, opts);
    std::printf("  %-13s %8.2f ms  (", FrameworkName(fw), cost.total_ms);
    for (size_t i = 0; i < cost.phases.size(); ++i) {
      std::printf("%s%s %.2f", i ? ", " : "", cost.phases[i].name.c_str(), cost.phases[i].ms);
    }
    std::printf(")\n");
  }
  return 0;
}
