// Minimal streaming client for the serving engine's session API.
//
// Demonstrates the full surface the ISSUE-5 redesign added:
//   * Submit() returns a SessionHandle instead of filling a result matrix
//     at drain time;
//   * chunked prefill serves a prompt longer than the iteration token
//     budget (it would be rejected outright with chunking off);
//   * rows stream out incrementally — one session uses the OnRows callback
//     (push), the other polls its cursor with NewRows() (pull);
//   * Cancel() tears a session down mid-stream and frees its KV pages.
//
// Build: cmake --build build --target example_streaming_client
// Run:   ./build/example_streaming_client

#include <cstdio>
#include <vector>

#include "src/moe/decoder_layer.h"
#include "src/serving/engine.h"
#include "src/serving/trace.h"
#include "src/tensor/rng.h"

using namespace samoyeds;

int main() {
  // A miniature 2-layer Samoyeds decoder (hidden 32, 4 experts, top-2).
  MoeModelConfig model_cfg;
  model_cfg.name = "tiny";
  model_cfg.num_experts = 4;
  model_cfg.hidden = 32;
  model_cfg.intermediate = 64;
  model_cfg.top_k = 2;
  Rng rng(7);
  const SamoyedsConfig fmt{1, 2, 32};
  std::vector<SamoyedsDecoderLayerWeights> layers;
  for (int l = 0; l < 2; ++l) {
    layers.push_back(
        SamoyedsDecoderLayerWeights::Encode(DecoderLayerWeights::Random(rng, model_cfg), fmt));
  }

  // Engine: 12-row iteration budget, 4-row prefill chunks. The 30-row
  // prompt below *only* fits because chunking is on.
  serving::EngineConfig cfg;
  cfg.heads = 4;
  cfg.top_k = 2;
  cfg.threads = 2;
  cfg.scheduler.policy = serving::SchedulerPolicy::kTokenBudget;
  cfg.scheduler.token_budget = 12;
  cfg.scheduler.chunk_tokens = 4;
  serving::ServingEngine engine(std::move(layers), cfg);

  const auto make_request = [&rng, &engine](int64_t id, int64_t prompt, int64_t decode) {
    serving::TraceEntry entry;
    entry.prompt_len = prompt;
    entry.max_new_tokens = decode;
    return serving::MakeRequest(rng, id, entry, engine.hidden());
  };

  // Session 0 (push): a long prompt delivered through the OnRows callback,
  // fired inside Step() as each chunk (and later each decode row) finalizes.
  serving::SessionHandle pushed = engine.Submit(
      make_request(/*id=*/0, /*prompt=*/30, /*decode=*/4),
      [](const serving::StreamDelta& delta) {
        std::printf("  [push] session %lld: rows [%lld, %lld)%s\n",
                    static_cast<long long>(delta.session_id),
                    static_cast<long long>(delta.position_begin),
                    static_cast<long long>(delta.position_begin + delta.rows.rows()),
                    delta.finished ? "  <- finished" : "");
      });

  // Session 1 (pull): polled between Step() calls through the cursor.
  serving::SessionHandle polled = engine.Submit(make_request(1, 6, 5));

  // Session 2: cancelled mid-prefill — its pages go back to the free list.
  serving::SessionHandle doomed = engine.Submit(make_request(2, 24, 4));

  std::printf("submitted 3 sessions (ok: %d %d %d); serving...\n", pushed.ok() ? 1 : 0,
              polled.ok() ? 1 : 0, doomed.ok() ? 1 : 0);

  int64_t steps = 0;
  while (engine.Step()) {
    ++steps;
    const MatrixF rows = polled.NewRows();
    if (rows.rows() > 0) {
      std::printf("  [pull] session 1: %lld new rows (delivered %lld, status %s)\n",
                  static_cast<long long>(rows.rows()),
                  static_cast<long long>(polled.delivered_rows()),
                  serving::RequestStatusName(polled.status()));
    }
    if (steps == 3 && doomed.status() == serving::RequestStatus::kRunning) {
      doomed.Cancel();
      std::printf("  [cancel] session 2 cancelled mid-prefill (%lld rows kept, "
                  "%lld KV pages in use)\n",
                  static_cast<long long>(engine.Result(2)->outputs.rows()),
                  static_cast<long long>(engine.kv_cache().allocator().used_pages()));
    }
  }

  std::printf("drained after %lld steps\n", static_cast<long long>(steps));
  for (int64_t id = 0; id < 3; ++id) {
    const serving::RequestResult* result = engine.Result(id);
    std::printf("session %lld: %s, %lld output rows\n", static_cast<long long>(id),
                serving::RequestStatusName(result->status),
                static_cast<long long>(result->outputs.rows()));
  }
  serving::EngineMetrics::Print(engine.Report(), stdout);
  return 0;
}
